package trainer

import (
	"testing"
	"tgopt/internal/autograd"
	"tgopt/internal/tensor"

	"tgopt/internal/dataset"
	"tgopt/internal/graph"
	"tgopt/internal/tgat"
)

func trainerSetup(t *testing.T, edges int) (*dataset.Dataset, *tgat.Model, *graph.Sampler) {
	t.Helper()
	spec := dataset.Spec{
		Name: "train", Bipartite: true, Users: 20, Items: 10, Edges: edges,
		MaxTime: 5e4, Repeat: 0.7, ZipfExponent: 1.1, ParetoAlpha: 1.2, Seed: 5,
	}
	ds, err := dataset.Generate(spec, dataset.Options{FeatureDim: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tgat.Config{Layers: 1, Heads: 2, NodeDim: 8, EdgeDim: 8, TimeDim: 8, NumNeighbors: 5, Seed: 7}
	m, err := tgat.NewModel(cfg, ds.NodeFeat, ds.EdgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	s := graph.NewSampler(ds.Graph, cfg.NumNeighbors, graph.MostRecent, 0)
	return ds, m, s
}

func TestTapeForwardMatchesInferenceForward(t *testing.T) {
	// The differentiable forward and the inference forward share
	// parameters and must agree exactly, otherwise trained weights would
	// not transfer.
	_, m, s := trainerSetup(t, 400)
	nodes := []int32{1, 5, 9, 21, 25}
	ts := []float64{1e4, 2e4, 3e4, 4e4, 4.5e4}
	tp := NewTape(m)
	got := Forward(m, s, tp, nodes, ts)
	want := m.Embed(s, nodes, ts, nil)
	if d := got.T.MaxAbsDiff(want); d > 1e-6 {
		t.Fatalf("tape forward differs from inference forward by %g", d)
	}
}

func TestTapeForwardMatchesTwoLayer(t *testing.T) {
	ds, _, _ := trainerSetup(t, 400)
	cfg := tgat.Config{Layers: 2, Heads: 2, NodeDim: 8, EdgeDim: 8, TimeDim: 8, NumNeighbors: 4, Seed: 9}
	m, err := tgat.NewModel(cfg, ds.NodeFeat, ds.EdgeFeat)
	if err != nil {
		t.Fatal(err)
	}
	s := graph.NewSampler(ds.Graph, cfg.NumNeighbors, graph.MostRecent, 0)
	nodes := []int32{2, 3, 22}
	ts := []float64{3e4, 3e4, 4e4}
	got := Forward(m, s, NewTape(m), nodes, ts)
	want := m.Embed(s, nodes, ts, nil)
	if d := got.T.MaxAbsDiff(want); d > 1e-6 {
		t.Fatalf("2-layer tape forward differs by %g", d)
	}
}

func TestTrainReducesLoss(t *testing.T) {
	ds, m, s := trainerSetup(t, 600)
	cfg := Config{Epochs: 4, BatchSize: 100, LR: 3e-3, TrainFrac: 0.7, Seed: 1}
	res, err := Train(m, ds.Graph, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EpochLoss) != 4 {
		t.Fatalf("epoch losses = %v", res.EpochLoss)
	}
	first, last := res.EpochLoss[0], res.EpochLoss[3]
	if last >= first {
		t.Fatalf("loss did not decrease: %v", res.EpochLoss)
	}
	if res.ValAP < 0.45 || res.ValAP > 1 {
		t.Fatalf("validation AP = %v out of sanity range", res.ValAP)
	}
	if res.ValAcc < 0 || res.ValAcc > 1 {
		t.Fatalf("validation accuracy = %v", res.ValAcc)
	}
}

func TestTrainLearnsBetterThanRandom(t *testing.T) {
	// On a highly repetitive bipartite graph, temporal link prediction is
	// learnable: the trained model must beat the 0.5 random baseline on
	// AP. Deterministic seeds make this stable.
	ds, m, s := trainerSetup(t, 1200)
	cfg := Config{Epochs: 15, BatchSize: 100, LR: 5e-3, TrainFrac: 0.75, Seed: 2}
	res, err := Train(m, ds.Graph, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ValAP <= 0.55 {
		t.Fatalf("trained AP = %v, want > 0.55", res.ValAP)
	}
}

func TestTrainConfigValidation(t *testing.T) {
	ds, m, s := trainerSetup(t, 300)
	bad := []Config{
		{Epochs: 0, BatchSize: 10, LR: 1e-3, TrainFrac: 0.7},
		{Epochs: 1, BatchSize: 0, LR: 1e-3, TrainFrac: 0.7},
		{Epochs: 1, BatchSize: 10, LR: 1e-3, TrainFrac: 0},
		{Epochs: 1, BatchSize: 10, LR: 1e-3, TrainFrac: 1.5},
	}
	for i, cfg := range bad {
		if _, err := Train(m, ds.Graph, s, cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	// Sampler k mismatch.
	ks := graph.NewSampler(ds.Graph, m.Cfg.NumNeighbors+1, graph.MostRecent, 0)
	if _, err := Train(m, ds.Graph, ks, DefaultConfig()); err == nil {
		t.Fatal("sampler k mismatch accepted")
	}
}

func TestTrainLogfCalled(t *testing.T) {
	ds, m, s := trainerSetup(t, 300)
	lines := 0
	cfg := Config{Epochs: 1, BatchSize: 100, LR: 1e-3, TrainFrac: 0.7, Logf: func(string, ...any) { lines++ }}
	if _, err := Train(m, ds.Graph, s, cfg); err != nil {
		t.Fatal(err)
	}
	if lines < 2 { // one epoch line + one validation line
		t.Fatalf("Logf called %d times", lines)
	}
}

func TestTrainFullTrainFracSkipsValidation(t *testing.T) {
	ds, m, s := trainerSetup(t, 300)
	cfg := Config{Epochs: 1, BatchSize: 100, LR: 1e-3, TrainFrac: 1.0}
	res, err := Train(m, ds.Graph, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ValAP != 0 || res.ValAcc != 0 {
		t.Fatalf("validation metrics set without a split: %+v", res)
	}
}

func TestNegativeSamplerDrawsFromDestinations(t *testing.T) {
	ds, _, _ := trainerSetup(t, 300)
	ns := newNegativeSampler(ds.Graph, 1)
	seen := map[int32]bool{}
	for _, e := range ds.Graph.Edges() {
		seen[e.Dst] = true
	}
	for i := 0; i < 200; i++ {
		v := ns.sample()
		if !seen[v] {
			t.Fatalf("negative %d never appears as a destination", v)
		}
	}
}

func TestDedupTrainingMatchesPlainTraining(t *testing.T) {
	// §7: deduplication is sound during training — losses and gradients
	// must match the non-deduplicated forward within floating-point
	// tolerance, on a batch with heavy target duplication.
	ds, m, s := trainerSetup(t, 600)
	edges := ds.Graph.Edges()[:100]
	nb := len(edges)
	nodes := make([]int32, 2*nb)
	ts := make([]float64, 2*nb)
	for i, e := range edges {
		nodes[i], nodes[nb+i] = e.Src, e.Dst
		ts[i], ts[nb+i] = e.Time, e.Time
	}
	labels := make([]float32, 2*nb)
	for i := range labels {
		labels[i] = float32(i % 2)
	}

	run := func(dedup bool) (float64, []*tensor.Tensor) {
		tp := NewTape(m)
		tp.SetDedup(dedup)
		h := Forward(m, s, tp, nodes, ts)
		logits := autograd.SliceRows(h, 0, 2*nb)
		// Reduce to per-target scalar logits through the affinity head
		// against themselves, so the tape reaches every parameter.
		out := tp.Score(m, logits, logits)
		loss := autograd.BCEWithLogits(out, labels)
		loss.Backward()
		return float64(loss.T.Data()[0]), tp.Grads()
	}

	lossPlain, gradsPlain := run(false)
	lossDedup, gradsDedup := run(true)
	if d := lossPlain - lossDedup; d > 1e-6 || d < -1e-6 {
		t.Fatalf("dedup changed the loss: %v vs %v", lossPlain, lossDedup)
	}
	for i := range gradsPlain {
		if gradsPlain[i] == nil || gradsDedup[i] == nil {
			t.Fatalf("missing gradient %d", i)
		}
		if diff := gradsPlain[i].MaxAbsDiff(gradsDedup[i]); diff > 1e-4 {
			t.Fatalf("gradient %d differs by %g under dedup", i, diff)
		}
	}
}

func TestTrainWithDedupConverges(t *testing.T) {
	ds, m, s := trainerSetup(t, 600)
	cfg := Config{Epochs: 3, BatchSize: 100, LR: 3e-3, TrainFrac: 0.7, Seed: 1, Dedup: true}
	res, err := Train(m, ds.Graph, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EpochLoss[2] >= res.EpochLoss[0] {
		t.Fatalf("dedup training loss did not fall: %v", res.EpochLoss)
	}
}

func TestTrainWithDropoutConverges(t *testing.T) {
	ds, m, s := trainerSetup(t, 600)
	cfg := Config{Epochs: 3, BatchSize: 100, LR: 3e-3, TrainFrac: 0.7, Seed: 1, Dropout: 0.1}
	res, err := Train(m, ds.Graph, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EpochLoss[2] >= res.EpochLoss[0] {
		t.Fatalf("dropout training loss did not fall: %v", res.EpochLoss)
	}
	// Inference after dropout training must be deterministic (no dropout
	// at inference time).
	a := m.Embed(s, []int32{1, 2}, []float64{4e4, 4e4}, nil)
	b := m.Embed(s, []int32{1, 2}, []float64{4e4, 4e4}, nil)
	if !a.AllClose(b, 0) {
		t.Fatal("inference nondeterministic after dropout training")
	}
}
