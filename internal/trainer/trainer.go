// Package trainer implements standard link-prediction training for the
// TGAT model (the paper trains its models "according to standard
// training procedures for link prediction" before measuring inference).
// Each training batch embeds the source, destination, and a negatively
// sampled destination for every edge, scores the positive and negative
// pairs with the affinity head, and minimizes binary cross-entropy with
// Adam. The forward pass is built on internal/autograd over the very
// same parameter tensors the inference layers use, so a trained model
// needs no conversion step.
package trainer

import (
	"errors"
	"fmt"
	"io/fs"
	"math"

	"tgopt/internal/autograd"
	"tgopt/internal/checkpoint"
	"tgopt/internal/core"
	"tgopt/internal/graph"
	"tgopt/internal/nn"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

// Config controls the training run.
type Config struct {
	Epochs    int
	BatchSize int
	LR        float64
	// TrainFrac is the chronological fraction of edges used for
	// training; the remainder is the validation split.
	TrainFrac float64
	Seed      uint64
	// Dedup applies TGOpt's deduplication filter inside the training
	// forward pass — the §7 observation that, while memoization is
	// unsound during training (parameters change every step),
	// deduplication still is: duplicated targets compute once and their
	// gradients fan in through the inverse index. Losses and gradients
	// are unchanged within floating-point tolerance.
	Dedup bool
	// Dropout is the training-time dropout probability applied to the
	// attention output and the merge hidden layer (TGAT's default is
	// 0.1; 0 disables). Inference never applies dropout.
	Dropout float64
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)

	// CheckpointPath, when non-empty, enables crash-safe checkpointing:
	// the full training state (parameters, Adam moments and step count,
	// both RNG streams, epoch/batch cursors, loss history) is written
	// atomically through internal/checkpoint at every epoch boundary and,
	// if CheckpointEvery > 0, every CheckpointEvery batches.
	CheckpointPath string
	// CheckpointEvery is the mid-epoch checkpoint cadence in batches
	// (0 = epoch boundaries only).
	CheckpointEvery int
	// Resume loads CheckpointPath before training and continues from the
	// recorded position. A missing file starts fresh; a corrupt one is an
	// error (delete it explicitly to discard).
	Resume bool
	// MaxBatches, when > 0, stops the run cleanly after that many batches
	// (checkpointing the exit position), simulating preemption. The
	// returned Result has Interrupted set.
	MaxBatches int
	// MaxRollbacks bounds how many times a non-finite batch may roll the
	// run back to the last checkpoint before Train gives up (0 means the
	// default of 8). Only meaningful with CheckpointPath set.
	MaxRollbacks int
}

// DefaultConfig returns a laptop-scale training configuration.
func DefaultConfig() Config {
	return Config{Epochs: 3, BatchSize: 200, LR: 1e-3, TrainFrac: 0.7, Seed: 1}
}

// Result summarizes a training run.
type Result struct {
	EpochLoss []float64 // mean train loss per epoch
	ValAP     float64   // average precision on the validation split
	ValAcc    float64   // accuracy at threshold 0.5

	NonFinite   int  // batches whose loss or gradients were NaN/Inf (step skipped)
	Rollbacks   int  // times a non-finite batch restored the last checkpoint
	Interrupted bool // run stopped early by MaxBatches (state checkpointed)
}

// params mirrors the model's trainable tensors as autograd leaves. The
// wrapping is rebuilt every step so gradients never leak across steps.
type params struct {
	tensors []*tensor.Tensor
	values  map[*tensor.Tensor]*autograd.Value
}

func wrapParams(m *tgat.Model) *params {
	ts := m.Params()
	p := &params{tensors: ts, values: make(map[*tensor.Tensor]*autograd.Value, len(ts))}
	for _, t := range ts {
		p.values[t] = autograd.Param(t)
	}
	return p
}

func (p *params) val(t *tensor.Tensor) *autograd.Value { return p.values[t] }

func (p *params) grads() []*tensor.Tensor {
	gs := make([]*tensor.Tensor, len(p.tensors))
	for i, t := range p.tensors {
		gs[i] = p.values[t].Grad()
	}
	return gs
}

// Forward computes top-layer embeddings on the autograd tape — the
// differentiable twin of tgat.Model.Embed. Exported so tests can verify
// it agrees with the inference forward bit-for-bit.
func Forward(m *tgat.Model, s *graph.Sampler, p *Tape, nodes []int32, ts []float64) *autograd.Value {
	return p.embed(m, s, m.Cfg.Layers, nodes, ts)
}

// Tape bundles the wrapped parameters plus constant feature tables for
// one forward/backward pass.
type Tape struct {
	p        *params
	nodeFeat *autograd.Value
	edgeFeat *autograd.Value
	dedup    bool
	dropout  float64
	rng      *tensor.RNG
}

// NewTape wraps the model's parameters and features for one step.
func NewTape(m *tgat.Model) *Tape {
	return &Tape{
		p:        wrapParams(m),
		nodeFeat: autograd.Const(m.NodeFeat),
		edgeFeat: autograd.Const(m.EdgeFeat),
	}
}

// SetDedup toggles the training-time deduplication filter (§7).
func (tp *Tape) SetDedup(on bool) { tp.dedup = on }

// SetDropout enables training-time dropout with probability p, drawing
// masks from the given deterministic generator.
func (tp *Tape) SetDropout(p float64, r *tensor.RNG) {
	tp.dropout = p
	tp.rng = r
}

// drop applies the tape's dropout setting (no-op when disabled).
func (tp *Tape) drop(v *autograd.Value) *autograd.Value {
	if tp.dropout <= 0 || tp.rng == nil {
		return v
	}
	return autograd.Dropout(v, tp.dropout, tp.rng)
}

// Grads returns gradients aligned with m.Params() order.
func (tp *Tape) Grads() []*tensor.Tensor { return tp.p.grads() }

func (tp *Tape) embed(m *tgat.Model, s *graph.Sampler, l int, nodes []int32, ts []float64) *autograd.Value {
	if l == 0 {
		return autograd.GatherRows(tp.nodeFeat, nodes)
	}
	if tp.dedup {
		res := core.DedupFilter(nodes, ts)
		if res.Unique() < len(nodes) {
			// Compute unique targets once; fan the rows (and, in the
			// backward pass, the gradients) back out through the
			// inverse index.
			h := tp.embedCompute(m, s, l, res.Nodes, res.Times)
			return autograd.GatherRows(h, res.InvIdx)
		}
	}
	return tp.embedCompute(m, s, l, nodes, ts)
}

func (tp *Tape) embedCompute(m *tgat.Model, s *graph.Sampler, l int, nodes []int32, ts []float64) *autograd.Value {
	n := len(nodes)
	k := m.Cfg.NumNeighbors
	b := s.Sample(nodes, ts)

	allNodes := make([]int32, n+n*k)
	allTs := make([]float64, n+n*k)
	copy(allNodes, nodes)
	copy(allTs, ts)
	copy(allNodes[n:], b.Nghs)
	copy(allTs[n:], b.Times)
	hAll := tp.embed(m, s, l-1, allNodes, allTs)
	hTgt := autograd.SliceRows(hAll, 0, n)
	hNgh := autograd.SliceRows(hAll, n, n+n*k)

	omega := tp.p.val(m.Time.Omega)
	phi := tp.p.val(m.Time.Phi)
	tEnc0 := autograd.CosAffine(omega, phi, make([]float64, n))
	deltas := make([]float64, n*k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			deltas[i*k+j] = ts[i] - b.Times[i*k+j]
		}
	}
	tEncD := autograd.CosAffine(omega, phi, deltas)
	eFeat := autograd.GatherRows(tp.edgeFeat, b.EIdxs)

	attn := m.Attn[l-1]
	q := autograd.ConcatCols(hTgt, tEnc0)
	kv := autograd.ConcatCols(hNgh, eFeat, tEncD)
	qp := tp.linear(q, attn.WQ)
	kp := tp.linear(kv, attn.WK)
	vp := tp.linear(kv, attn.WV)
	ctx := autograd.Attend(qp, kp, vp, k, b.Valid, attn.Heads)
	attnOut := tp.drop(tp.linear(ctx, attn.WO))

	return tp.merge(autograd.ConcatCols(attnOut, hTgt), m.Merge[l-1])
}

func (tp *Tape) linear(x *autograd.Value, l *nn.Linear) *autograd.Value {
	var b *autograd.Value
	if l.B != nil {
		b = tp.p.val(l.B)
	}
	return autograd.Linear(x, tp.p.val(l.W), b)
}

func (tp *Tape) merge(x *autograd.Value, m *nn.MergeLayer) *autograd.Value {
	h := tp.drop(autograd.ReLU(tp.linear(x, m.FC1)))
	return tp.linear(h, m.FC2)
}

// Score runs the affinity head on the tape.
func (tp *Tape) Score(m *tgat.Model, hSrc, hDst *autograd.Value) *autograd.Value {
	return tp.merge(autograd.ConcatCols(hSrc, hDst), m.Affinity)
}

// negativeSampler draws corrupting destination nodes uniformly from the
// destination population observed in the edge stream (items for
// bipartite graphs, any node for homogeneous ones).
type negativeSampler struct {
	dsts []int32
	r    *tensor.RNG
}

func newNegativeSampler(g *graph.Graph, seed uint64) *negativeSampler {
	seen := map[int32]struct{}{}
	var dsts []int32
	for _, e := range g.Edges() {
		if _, ok := seen[e.Dst]; !ok {
			seen[e.Dst] = struct{}{}
			dsts = append(dsts, e.Dst)
		}
	}
	return &negativeSampler{dsts: dsts, r: tensor.NewRNG(seed)}
}

func (ns *negativeSampler) sample() int32 { return ns.dsts[ns.r.Intn(len(ns.dsts))] }

// preStepHook, when non-nil, runs before each batch with the number of
// batches executed so far this run. Tests use it to inject faults
// (poisoning a parameter to NaN) at a chosen step.
var preStepHook func(step int)

// Train runs link-prediction training and returns the loss trajectory
// and validation metrics. The sampler must use the same k as the model.
//
// With cfg.CheckpointPath set, the run checkpoints its full state
// atomically and can resume after a crash (cfg.Resume) with the same
// loss trajectory an uninterrupted run would produce. Batches with
// non-finite loss or gradients never reach the optimizer: without
// checkpointing they are skipped and counted; with it, the run rolls
// back to the last checkpoint (fresh negative samples and dropout masks
// give the retry a different trajectory) up to MaxRollbacks times.
func Train(m *tgat.Model, g *graph.Graph, s *graph.Sampler, cfg Config) (*Result, error) {
	if cfg.Epochs < 1 || cfg.BatchSize < 1 {
		return nil, fmt.Errorf("trainer: bad config %+v", cfg)
	}
	if cfg.TrainFrac <= 0 || cfg.TrainFrac > 1 {
		return nil, fmt.Errorf("trainer: TrainFrac %v out of (0,1]", cfg.TrainFrac)
	}
	if s.K() != m.Cfg.NumNeighbors {
		return nil, fmt.Errorf("trainer: sampler k %d != model NumNeighbors %d", s.K(), m.Cfg.NumNeighbors)
	}
	if cfg.Resume && cfg.CheckpointPath == "" {
		return nil, fmt.Errorf("trainer: Resume requires CheckpointPath")
	}
	if cfg.CheckpointEvery < 0 || cfg.MaxBatches < 0 || cfg.MaxRollbacks < 0 {
		return nil, fmt.Errorf("trainer: negative checkpoint config %+v", cfg)
	}
	edges := g.Edges()
	split := int(float64(len(edges)) * cfg.TrainFrac)
	if split < 1 {
		return nil, fmt.Errorf("trainer: empty training split")
	}
	train := edges[:split]
	val := edges[split:]
	neg := newNegativeSampler(g, cfg.Seed)
	opt := nn.NewAdam(m.Params(), cfg.LR)
	dropRNG := tensor.NewRNG(cfg.Seed ^ 0xD20)

	ckpt := cfg.CheckpointPath != ""
	maxRollbacks := cfg.MaxRollbacks
	if maxRollbacks == 0 {
		maxRollbacks = 8
	}
	st := &trainState{}
	if cfg.Resume {
		loaded, err := loadTrainCheckpoint(cfg.CheckpointPath, m, opt, neg.r, dropRNG)
		switch {
		case err == nil:
			st = loaded
			if cfg.Logf != nil {
				cfg.Logf("resumed from %s: epoch %d batch %d", cfg.CheckpointPath, st.epoch, st.batch)
			}
		case errors.Is(err, fs.ErrNotExist):
			if cfg.Logf != nil {
				cfg.Logf("no checkpoint at %s, starting fresh", cfg.CheckpointPath)
			}
		default:
			return nil, fmt.Errorf("trainer: resume: %w", err)
		}
	}
	save := func() error {
		if !ckpt {
			return nil
		}
		return saveTrainCheckpoint(checkpoint.OS{}, cfg.CheckpointPath, m, opt, neg.r, dropRNG, st)
	}
	// An initial checkpoint so the first rollback always has a target.
	if err := save(); err != nil {
		return nil, fmt.Errorf("trainer: initial checkpoint: %w", err)
	}

	res := &Result{}
	batchesPerEpoch := (len(train) + cfg.BatchSize - 1) / cfg.BatchSize
	done := 0 // batches executed this run (fault hook and MaxBatches cadence)
	for st.epoch < cfg.Epochs {
		for st.batch < batchesPerEpoch {
			if cfg.MaxBatches > 0 && done >= cfg.MaxBatches {
				if err := save(); err != nil {
					return nil, fmt.Errorf("trainer: interrupt checkpoint: %w", err)
				}
				res.Interrupted = true
				res.EpochLoss = st.epochLoss
				if cfg.Logf != nil {
					cfg.Logf("interrupted after %d batches at epoch %d batch %d", done, st.epoch, st.batch)
				}
				return res, nil
			}
			if preStepHook != nil {
				preStepHook(done)
			}
			start := st.batch * cfg.BatchSize
			end := start + cfg.BatchSize
			if end > len(train) {
				end = len(train)
			}
			loss, ok := trainStep(m, s, train[start:end], neg, opt, cfg, dropRNG)
			done++
			if !ok {
				res.NonFinite++
				if cfg.Logf != nil {
					cfg.Logf("epoch %d batch %d: non-finite loss/gradients (%v), optimizer step skipped", st.epoch, st.batch, loss)
				}
				if !ckpt {
					st.batch++ // skip the batch; nothing to restore from
					continue
				}
				if res.Rollbacks >= maxRollbacks {
					return res, fmt.Errorf("trainer: diverged: %d non-finite batches after %d rollbacks", res.NonFinite, res.Rollbacks)
				}
				// Restore everything except the RNG streams: the retried
				// batch sees fresh negatives and dropout masks, so a
				// deterministic NaN cannot loop forever.
				rb, err := loadTrainCheckpoint(cfg.CheckpointPath, m, opt, tensor.NewRNG(0), tensor.NewRNG(0))
				if err != nil {
					return res, fmt.Errorf("trainer: rollback: %w", err)
				}
				*st = *rb
				res.Rollbacks++
				continue
			}
			st.lossSum += loss
			st.batches++
			st.batch++
			if ckpt && cfg.CheckpointEvery > 0 && done%cfg.CheckpointEvery == 0 {
				if err := save(); err != nil {
					return nil, fmt.Errorf("trainer: periodic checkpoint: %w", err)
				}
			}
		}
		mean := st.lossSum / float64(st.batches)
		st.epochLoss = append(st.epochLoss, mean)
		if cfg.Logf != nil {
			cfg.Logf("epoch %d/%d: mean loss %.4f", st.epoch+1, cfg.Epochs, mean)
		}
		st.epoch++
		st.batch, st.lossSum, st.batches = 0, 0, 0
		if err := save(); err != nil {
			return nil, fmt.Errorf("trainer: epoch checkpoint: %w", err)
		}
	}
	res.EpochLoss = st.epochLoss
	if len(val) > 0 {
		res.ValAP, res.ValAcc = Evaluate(m, s, val, neg)
		if cfg.Logf != nil {
			cfg.Logf("validation: AP %.4f  accuracy %.4f", res.ValAP, res.ValAcc)
		}
	}
	return res, nil
}

// finiteTensors reports whether every element of every non-nil tensor
// is finite.
func finiteTensors(ts []*tensor.Tensor) bool {
	for _, t := range ts {
		if t == nil {
			continue
		}
		for _, v := range t.Data() {
			f := float64(v)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return false
			}
		}
	}
	return true
}

// trainStep runs one forward/backward pass and, when the loss and all
// gradients are finite, applies the optimizer step. It returns the loss
// and whether the step was applied; a non-finite batch leaves the
// parameters and optimizer state untouched.
func trainStep(m *tgat.Model, s *graph.Sampler, batch []graph.Edge, neg *negativeSampler, opt *nn.Adam, cfg Config, dropRNG *tensor.RNG) (float64, bool) {
	nb := len(batch)
	// Pack sources, destinations, negatives into one embedding batch.
	nodes := make([]int32, 3*nb)
	ts := make([]float64, 3*nb)
	for i, e := range batch {
		nodes[i] = e.Src
		nodes[nb+i] = e.Dst
		nodes[2*nb+i] = neg.sample()
		ts[i], ts[nb+i], ts[2*nb+i] = e.Time, e.Time, e.Time
	}
	tp := NewTape(m)
	tp.SetDedup(cfg.Dedup)
	tp.SetDropout(cfg.Dropout, dropRNG)
	h := Forward(m, s, tp, nodes, ts)
	hSrc := autograd.SliceRows(h, 0, nb)
	hDst := autograd.SliceRows(h, nb, 2*nb)
	hNeg := autograd.SliceRows(h, 2*nb, 3*nb)
	posLogits := tp.Score(m, hSrc, hDst)
	negLogits := tp.Score(m, hSrc, hNeg)
	logits := autograd.ConcatCols(posLogits, negLogits) // (nb, 2) flattened below
	labels := make([]float32, 2*nb)
	for i := 0; i < nb; i++ {
		labels[2*i] = 1 // column-major within each row: pos, neg
	}
	loss := autograd.BCEWithLogits(logits, labels)
	loss.Backward()
	lv := float64(loss.T.Data()[0])
	grads := tp.Grads()
	if math.IsNaN(lv) || math.IsInf(lv, 0) || !finiteTensors(grads) {
		return lv, false
	}
	opt.Step(grads)
	return lv, true
}

// Evaluate scores each validation edge against one sampled negative and
// reports average precision and accuracy.
func Evaluate(m *tgat.Model, s *graph.Sampler, val []graph.Edge, neg *negativeSampler) (ap, acc float64) {
	var scores []float64
	var labels []bool
	const chunk = 200
	for start := 0; start < len(val); start += chunk {
		end := start + chunk
		if end > len(val) {
			end = len(val)
		}
		batch := val[start:end]
		nb := len(batch)
		nodes := make([]int32, 3*nb)
		ts := make([]float64, 3*nb)
		for i, e := range batch {
			nodes[i] = e.Src
			nodes[nb+i] = e.Dst
			nodes[2*nb+i] = neg.sample()
			ts[i], ts[nb+i], ts[2*nb+i] = e.Time, e.Time, e.Time
		}
		h := m.Embed(s, nodes, ts, nil)
		d := m.Cfg.NodeDim
		hSrc := tensor.FromSlice(h.Data()[:nb*d], nb, d)
		hDst := tensor.FromSlice(h.Data()[nb*d:2*nb*d], nb, d)
		hNeg := tensor.FromSlice(h.Data()[2*nb*d:], nb, d)
		pos := m.Score(hSrc, hDst)
		negl := m.Score(hSrc, hNeg)
		for i := 0; i < nb; i++ {
			scores = append(scores, float64(pos.At(i, 0)))
			labels = append(labels, true)
			scores = append(scores, float64(negl.At(i, 0)))
			labels = append(labels, false)
		}
	}
	if len(scores) == 0 {
		return math.NaN(), math.NaN()
	}
	return nn.AveragePrecision(scores, labels), nn.Accuracy(scores, labels)
}
