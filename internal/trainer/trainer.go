// Package trainer implements standard link-prediction training for the
// TGAT model (the paper trains its models "according to standard
// training procedures for link prediction" before measuring inference).
// Each training batch embeds the source, destination, and a negatively
// sampled destination for every edge, scores the positive and negative
// pairs with the affinity head, and minimizes binary cross-entropy with
// Adam. The forward pass is built on internal/autograd over the very
// same parameter tensors the inference layers use, so a trained model
// needs no conversion step.
package trainer

import (
	"fmt"
	"math"

	"tgopt/internal/autograd"
	"tgopt/internal/core"
	"tgopt/internal/graph"
	"tgopt/internal/nn"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

// Config controls the training run.
type Config struct {
	Epochs    int
	BatchSize int
	LR        float64
	// TrainFrac is the chronological fraction of edges used for
	// training; the remainder is the validation split.
	TrainFrac float64
	Seed      uint64
	// Dedup applies TGOpt's deduplication filter inside the training
	// forward pass — the §7 observation that, while memoization is
	// unsound during training (parameters change every step),
	// deduplication still is: duplicated targets compute once and their
	// gradients fan in through the inverse index. Losses and gradients
	// are unchanged within floating-point tolerance.
	Dedup bool
	// Dropout is the training-time dropout probability applied to the
	// attention output and the merge hidden layer (TGAT's default is
	// 0.1; 0 disables). Inference never applies dropout.
	Dropout float64
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// DefaultConfig returns a laptop-scale training configuration.
func DefaultConfig() Config {
	return Config{Epochs: 3, BatchSize: 200, LR: 1e-3, TrainFrac: 0.7, Seed: 1}
}

// Result summarizes a training run.
type Result struct {
	EpochLoss []float64 // mean train loss per epoch
	ValAP     float64   // average precision on the validation split
	ValAcc    float64   // accuracy at threshold 0.5
}

// params mirrors the model's trainable tensors as autograd leaves. The
// wrapping is rebuilt every step so gradients never leak across steps.
type params struct {
	tensors []*tensor.Tensor
	values  map[*tensor.Tensor]*autograd.Value
}

func wrapParams(m *tgat.Model) *params {
	ts := m.Params()
	p := &params{tensors: ts, values: make(map[*tensor.Tensor]*autograd.Value, len(ts))}
	for _, t := range ts {
		p.values[t] = autograd.Param(t)
	}
	return p
}

func (p *params) val(t *tensor.Tensor) *autograd.Value { return p.values[t] }

func (p *params) grads() []*tensor.Tensor {
	gs := make([]*tensor.Tensor, len(p.tensors))
	for i, t := range p.tensors {
		gs[i] = p.values[t].Grad()
	}
	return gs
}

// Forward computes top-layer embeddings on the autograd tape — the
// differentiable twin of tgat.Model.Embed. Exported so tests can verify
// it agrees with the inference forward bit-for-bit.
func Forward(m *tgat.Model, s *graph.Sampler, p *Tape, nodes []int32, ts []float64) *autograd.Value {
	return p.embed(m, s, m.Cfg.Layers, nodes, ts)
}

// Tape bundles the wrapped parameters plus constant feature tables for
// one forward/backward pass.
type Tape struct {
	p        *params
	nodeFeat *autograd.Value
	edgeFeat *autograd.Value
	dedup    bool
	dropout  float64
	rng      *tensor.RNG
}

// NewTape wraps the model's parameters and features for one step.
func NewTape(m *tgat.Model) *Tape {
	return &Tape{
		p:        wrapParams(m),
		nodeFeat: autograd.Const(m.NodeFeat),
		edgeFeat: autograd.Const(m.EdgeFeat),
	}
}

// SetDedup toggles the training-time deduplication filter (§7).
func (tp *Tape) SetDedup(on bool) { tp.dedup = on }

// SetDropout enables training-time dropout with probability p, drawing
// masks from the given deterministic generator.
func (tp *Tape) SetDropout(p float64, r *tensor.RNG) {
	tp.dropout = p
	tp.rng = r
}

// drop applies the tape's dropout setting (no-op when disabled).
func (tp *Tape) drop(v *autograd.Value) *autograd.Value {
	if tp.dropout <= 0 || tp.rng == nil {
		return v
	}
	return autograd.Dropout(v, tp.dropout, tp.rng)
}

// Grads returns gradients aligned with m.Params() order.
func (tp *Tape) Grads() []*tensor.Tensor { return tp.p.grads() }

func (tp *Tape) embed(m *tgat.Model, s *graph.Sampler, l int, nodes []int32, ts []float64) *autograd.Value {
	if l == 0 {
		return autograd.GatherRows(tp.nodeFeat, nodes)
	}
	if tp.dedup {
		res := core.DedupFilter(nodes, ts)
		if res.Unique() < len(nodes) {
			// Compute unique targets once; fan the rows (and, in the
			// backward pass, the gradients) back out through the
			// inverse index.
			h := tp.embedCompute(m, s, l, res.Nodes, res.Times)
			return autograd.GatherRows(h, res.InvIdx)
		}
	}
	return tp.embedCompute(m, s, l, nodes, ts)
}

func (tp *Tape) embedCompute(m *tgat.Model, s *graph.Sampler, l int, nodes []int32, ts []float64) *autograd.Value {
	n := len(nodes)
	k := m.Cfg.NumNeighbors
	b := s.Sample(nodes, ts)

	allNodes := make([]int32, n+n*k)
	allTs := make([]float64, n+n*k)
	copy(allNodes, nodes)
	copy(allTs, ts)
	copy(allNodes[n:], b.Nghs)
	copy(allTs[n:], b.Times)
	hAll := tp.embed(m, s, l-1, allNodes, allTs)
	hTgt := autograd.SliceRows(hAll, 0, n)
	hNgh := autograd.SliceRows(hAll, n, n+n*k)

	omega := tp.p.val(m.Time.Omega)
	phi := tp.p.val(m.Time.Phi)
	tEnc0 := autograd.CosAffine(omega, phi, make([]float64, n))
	deltas := make([]float64, n*k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			deltas[i*k+j] = ts[i] - b.Times[i*k+j]
		}
	}
	tEncD := autograd.CosAffine(omega, phi, deltas)
	eFeat := autograd.GatherRows(tp.edgeFeat, b.EIdxs)

	attn := m.Attn[l-1]
	q := autograd.ConcatCols(hTgt, tEnc0)
	kv := autograd.ConcatCols(hNgh, eFeat, tEncD)
	qp := tp.linear(q, attn.WQ)
	kp := tp.linear(kv, attn.WK)
	vp := tp.linear(kv, attn.WV)
	ctx := autograd.Attend(qp, kp, vp, k, b.Valid, attn.Heads)
	attnOut := tp.drop(tp.linear(ctx, attn.WO))

	return tp.merge(autograd.ConcatCols(attnOut, hTgt), m.Merge[l-1])
}

func (tp *Tape) linear(x *autograd.Value, l *nn.Linear) *autograd.Value {
	var b *autograd.Value
	if l.B != nil {
		b = tp.p.val(l.B)
	}
	return autograd.Linear(x, tp.p.val(l.W), b)
}

func (tp *Tape) merge(x *autograd.Value, m *nn.MergeLayer) *autograd.Value {
	h := tp.drop(autograd.ReLU(tp.linear(x, m.FC1)))
	return tp.linear(h, m.FC2)
}

// Score runs the affinity head on the tape.
func (tp *Tape) Score(m *tgat.Model, hSrc, hDst *autograd.Value) *autograd.Value {
	return tp.merge(autograd.ConcatCols(hSrc, hDst), m.Affinity)
}

// negativeSampler draws corrupting destination nodes uniformly from the
// destination population observed in the edge stream (items for
// bipartite graphs, any node for homogeneous ones).
type negativeSampler struct {
	dsts []int32
	r    *tensor.RNG
}

func newNegativeSampler(g *graph.Graph, seed uint64) *negativeSampler {
	seen := map[int32]struct{}{}
	var dsts []int32
	for _, e := range g.Edges() {
		if _, ok := seen[e.Dst]; !ok {
			seen[e.Dst] = struct{}{}
			dsts = append(dsts, e.Dst)
		}
	}
	return &negativeSampler{dsts: dsts, r: tensor.NewRNG(seed)}
}

func (ns *negativeSampler) sample() int32 { return ns.dsts[ns.r.Intn(len(ns.dsts))] }

// Train runs link-prediction training and returns the loss trajectory
// and validation metrics. The sampler must use the same k as the model.
func Train(m *tgat.Model, g *graph.Graph, s *graph.Sampler, cfg Config) (*Result, error) {
	if cfg.Epochs < 1 || cfg.BatchSize < 1 {
		return nil, fmt.Errorf("trainer: bad config %+v", cfg)
	}
	if cfg.TrainFrac <= 0 || cfg.TrainFrac > 1 {
		return nil, fmt.Errorf("trainer: TrainFrac %v out of (0,1]", cfg.TrainFrac)
	}
	if s.K() != m.Cfg.NumNeighbors {
		return nil, fmt.Errorf("trainer: sampler k %d != model NumNeighbors %d", s.K(), m.Cfg.NumNeighbors)
	}
	edges := g.Edges()
	split := int(float64(len(edges)) * cfg.TrainFrac)
	if split < 1 {
		return nil, fmt.Errorf("trainer: empty training split")
	}
	train := edges[:split]
	val := edges[split:]
	neg := newNegativeSampler(g, cfg.Seed)
	opt := nn.NewAdam(m.Params(), cfg.LR)
	dropRNG := tensor.NewRNG(cfg.Seed ^ 0xD20)

	res := &Result{}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var lossSum float64
		var batches int
		for start := 0; start < len(train); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(train) {
				end = len(train)
			}
			loss := trainStep(m, s, train[start:end], neg, opt, cfg, dropRNG)
			lossSum += loss
			batches++
		}
		mean := lossSum / float64(batches)
		res.EpochLoss = append(res.EpochLoss, mean)
		if cfg.Logf != nil {
			cfg.Logf("epoch %d/%d: mean loss %.4f", epoch+1, cfg.Epochs, mean)
		}
	}
	if len(val) > 0 {
		res.ValAP, res.ValAcc = Evaluate(m, s, val, neg)
		if cfg.Logf != nil {
			cfg.Logf("validation: AP %.4f  accuracy %.4f", res.ValAP, res.ValAcc)
		}
	}
	return res, nil
}

func trainStep(m *tgat.Model, s *graph.Sampler, batch []graph.Edge, neg *negativeSampler, opt *nn.Adam, cfg Config, dropRNG *tensor.RNG) float64 {
	nb := len(batch)
	// Pack sources, destinations, negatives into one embedding batch.
	nodes := make([]int32, 3*nb)
	ts := make([]float64, 3*nb)
	for i, e := range batch {
		nodes[i] = e.Src
		nodes[nb+i] = e.Dst
		nodes[2*nb+i] = neg.sample()
		ts[i], ts[nb+i], ts[2*nb+i] = e.Time, e.Time, e.Time
	}
	tp := NewTape(m)
	tp.SetDedup(cfg.Dedup)
	tp.SetDropout(cfg.Dropout, dropRNG)
	h := Forward(m, s, tp, nodes, ts)
	hSrc := autograd.SliceRows(h, 0, nb)
	hDst := autograd.SliceRows(h, nb, 2*nb)
	hNeg := autograd.SliceRows(h, 2*nb, 3*nb)
	posLogits := tp.Score(m, hSrc, hDst)
	negLogits := tp.Score(m, hSrc, hNeg)
	logits := autograd.ConcatCols(posLogits, negLogits) // (nb, 2) flattened below
	labels := make([]float32, 2*nb)
	for i := 0; i < nb; i++ {
		labels[2*i] = 1 // column-major within each row: pos, neg
	}
	loss := autograd.BCEWithLogits(logits, labels)
	loss.Backward()
	opt.Step(tp.Grads())
	return float64(loss.T.Data()[0])
}

// Evaluate scores each validation edge against one sampled negative and
// reports average precision and accuracy.
func Evaluate(m *tgat.Model, s *graph.Sampler, val []graph.Edge, neg *negativeSampler) (ap, acc float64) {
	var scores []float64
	var labels []bool
	const chunk = 200
	for start := 0; start < len(val); start += chunk {
		end := start + chunk
		if end > len(val) {
			end = len(val)
		}
		batch := val[start:end]
		nb := len(batch)
		nodes := make([]int32, 3*nb)
		ts := make([]float64, 3*nb)
		for i, e := range batch {
			nodes[i] = e.Src
			nodes[nb+i] = e.Dst
			nodes[2*nb+i] = neg.sample()
			ts[i], ts[nb+i], ts[2*nb+i] = e.Time, e.Time, e.Time
		}
		h := m.Embed(s, nodes, ts, nil)
		d := m.Cfg.NodeDim
		hSrc := tensor.FromSlice(h.Data()[:nb*d], nb, d)
		hDst := tensor.FromSlice(h.Data()[nb*d:2*nb*d], nb, d)
		hNeg := tensor.FromSlice(h.Data()[2*nb*d:], nb, d)
		pos := m.Score(hSrc, hDst)
		negl := m.Score(hSrc, hNeg)
		for i := 0; i < nb; i++ {
			scores = append(scores, float64(pos.At(i, 0)))
			labels = append(labels, true)
			scores = append(scores, float64(negl.At(i, 0)))
			labels = append(labels, false)
		}
	}
	if len(scores) == 0 {
		return math.NaN(), math.NaN()
	}
	return nn.AveragePrecision(scores, labels), nn.Accuracy(scores, labels)
}
