package experiments

import (
	"io"

	"tgopt/internal/core"
)

// Table1Row is the per-dataset duplication result: the fraction of each
// layer's input batch that is duplicated, averaged over all batches of
// the stream (paper Table 1; batches of 200 edges, 2-layer model).
// Layer[L] is the starting layer's input (the packed edge batch),
// Layer[0] the node-feature lookup (node-only duplication rule).
type Table1Row struct {
	Dataset string
	Layer   []float64 // index = layer, length Layers+1
}

// Table1 measures per-layer batch duplication for the given datasets.
// It mirrors the model's recursive batching: targets are deduplicated at
// each layer before their neighborhoods are pooled for the next one —
// the same discipline TGOpt applies — so the percentages compose the way
// §3.1 describes.
func Table1(w io.Writer, s Setup, names []string) ([]Table1Row, error) {
	fprintf(w, "Table 1: %% duplication per batch of %d edges, per TGAT layer\n", s.BatchSize)
	fprintf(w, "%-14s", "dataset")
	for l := 0; l <= s.Layers; l++ {
		fprintf(w, "  layer %d", l)
	}
	fprintf(w, "\n")
	var rows []Table1Row
	for _, name := range names {
		wl, err := LoadWorkload(name, s)
		if err != nil {
			return nil, err
		}
		row := measureDuplication(wl, s)
		rows = append(rows, row)
		fprintf(w, "%-14s", name)
		for l := 0; l <= s.Layers; l++ {
			fprintf(w, "  %6.1f%%", 100*row.Layer[l])
		}
		fprintf(w, "\n")
	}
	return rows, nil
}

func measureDuplication(wl *Workload, s Setup) Table1Row {
	edges := wl.DS.Graph.Edges()
	L := s.Layers
	sums := make([]float64, L+1)
	batches := 0
	for start := 0; start < len(edges); start += s.BatchSize {
		end := start + s.BatchSize
		if end > len(edges) {
			end = len(edges)
		}
		batch := edges[start:end]
		nb := len(batch)
		nodes := make([]int32, 2*nb)
		ts := make([]float64, 2*nb)
		for i, e := range batch {
			nodes[i], nodes[nb+i] = e.Src, e.Dst
			ts[i], ts[nb+i] = e.Time, e.Time
		}
		// Walk down the layers: measure duplication of each layer's
		// input, dedup, pool neighborhoods for the next.
		for l := L; l >= 1; l-- {
			sums[l] += core.DuplicationRatio(nodes, ts)
			res := core.DedupFilter(nodes, ts)
			b := wl.Sampler.Sample(res.Nodes, res.Times)
			n := len(res.Nodes)
			next := make([]int32, n+n*b.K)
			nextTs := make([]float64, n+n*b.K)
			copy(next, res.Nodes)
			copy(nextTs, res.Times)
			copy(next[n:], b.Nghs)
			copy(nextTs[n:], b.Times)
			nodes, ts = next, nextTs
		}
		// Layer 0: features are static, so only the node id matters.
		sums[0] += core.NodeDuplicationRatio(nodes)
		batches++
	}
	row := Table1Row{Dataset: wl.DS.Name, Layer: make([]float64, L+1)}
	for l := range row.Layer {
		row.Layer[l] = sums[l] / float64(batches)
	}
	return row
}
