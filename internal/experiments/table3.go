package experiments

import (
	"io"
	"sort"
	"time"

	"tgopt/internal/stats"
)

// Table3Result is the per-operation cost breakdown of one dataset on
// one device: baseline and TGOpt durations per Algorithm 1 operation,
// plus the average cache hit rate and used cache size of the optimized
// run (paper Table 3).
type Table3Result struct {
	Dataset    string
	Device     DeviceKind
	Baseline   map[string]time.Duration
	Optimized  map[string]time.Duration
	HitRate    float64
	CacheBytes int64
	CacheItems int
}

// Table3Ops is the row order of the paper's table.
var Table3Ops = []string{
	stats.OpNghLookup,
	stats.OpDedupFilter,
	stats.OpDedupInvert,
	stats.OpTimeEncZero,
	stats.OpTimeEncDelta,
	stats.OpComputeKeys,
	stats.OpCacheLookup,
	stats.OpCacheStore,
	stats.OpAttention,
}

// Table3 runs the breakdown analysis for each named dataset on the
// given device kind.
func Table3(w io.Writer, s Setup, names []string, kind DeviceKind) ([]Table3Result, error) {
	var results []Table3Result
	for _, name := range names {
		wl, err := LoadWorkload(name, s)
		if err != nil {
			return nil, err
		}
		wl.SetBatchSize(s.BatchSize)
		base := RunInference(wl, baselineOptions(), kind)
		opt := RunInference(wl, optAllScaled(s), kind)
		res := Table3Result{
			Dataset:    name,
			Device:     kind,
			Baseline:   base.Collector.Durations(),
			Optimized:  opt.Collector.Durations(),
			HitRate:    opt.HitRate.Average(),
			CacheBytes: opt.Engine.CacheBytes(),
			CacheItems: opt.Engine.CacheLen(),
		}
		results = append(results, res)
		fprintf(w, "Table 3 (%s, %s): total runtime of operations\n", name, kind)
		fprintf(w, "%-16s %12s %12s\n", "operation", "base", "ours")
		for _, op := range Table3Ops {
			b, hasB := res.Baseline[op]
			o, hasO := res.Optimized[op]
			if !hasB && !hasO {
				continue
			}
			fprintf(w, "%-16s %11.3fs %11.3fs\n", op, b.Seconds(), o.Seconds())
		}
		// Any remaining recorded ops (feature lookups, transfers).
		var extra []string
		for op := range res.Optimized {
			if !contains(Table3Ops, op) {
				extra = append(extra, op)
			}
		}
		sort.Strings(extra)
		for _, op := range extra {
			fprintf(w, "%-16s %11.3fs %11.3fs\n", op, res.Baseline[op].Seconds(), res.Optimized[op].Seconds())
		}
		fprintf(w, "%-16s %11.2f%%\n", "avg hit rate", 100*res.HitRate)
		fprintf(w, "%-16s %10.1fMiB (%d items)\n\n", "used cache size",
			float64(res.CacheBytes)/(1<<20), res.CacheItems)
	}
	return results, nil
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
