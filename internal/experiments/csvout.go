package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"tgopt/internal/device"
)

// CSV emitters: the paper's artifact writes machine-readable results
// under logs/ (ab-cpu.csv, bd-*-hits.csv, …) for its plot scripts; these
// helpers provide the same for downstream analysis.

// WriteCSVFile writes header+rows into dir/name.csv, creating dir.
func WriteCSVFile(dir, name string, header []string, rows [][]string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		f.Close()
		return "", err
	}
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return "", err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// Table1CSV flattens duplication ratios.
func Table1CSV(rows []Table1Row) ([]string, [][]string) {
	header := []string{"dataset", "layer", "duplication"}
	var out [][]string
	for _, r := range rows {
		for l, v := range r.Layer {
			out = append(out, []string{r.Dataset, strconv.Itoa(l), ftoa(v)})
		}
	}
	return header, out
}

// Figure3CSV flattens the reuse trend.
func Figure3CSV(points []Figure3Point) ([]string, [][]string) {
	header := []string{"time", "reused", "recomputed"}
	var out [][]string
	for _, p := range points {
		out = append(out, []string{ftoa(p.Time), strconv.FormatInt(p.Reused, 10), strconv.FormatInt(p.Recomputed, 10)})
	}
	return header, out
}

// Figure4CSV flattens the delta histogram.
func Figure4CSV(buckets []Figure4Bucket) ([]string, [][]string) {
	header := []string{"dt_lo", "dt_hi", "count"}
	var out [][]string
	for _, b := range buckets {
		out = append(out, []string{ftoa(b.Lo), ftoa(b.Hi), strconv.FormatInt(b.Count, 10)})
	}
	return header, out
}

// Figure5CSV flattens runtimes and speedups.
func Figure5CSV(rows []Figure5Row) ([]string, [][]string) {
	header := []string{"dataset", "device", "baseline_s", "baseline_std_s", "tgopt_s", "tgopt_std_s", "speedup"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, r.Device.String(),
			ftoa(r.Baseline.Seconds()), ftoa(r.BaselineStd.Seconds()),
			ftoa(r.Optimized.Seconds()), ftoa(r.OptimizedStd.Seconds()),
			ftoa(r.Speedup()),
		})
	}
	return header, out
}

// Figure6CSV flattens the ablation trajectory (the artifact's
// ab-{cpu,gpu}.csv).
func Figure6CSV(rows []Figure6Row) ([]string, [][]string) {
	header := []string{"dataset", "device", "step", "runtime_s", "speedup"}
	var out [][]string
	for _, r := range rows {
		for i, label := range r.Labels {
			out = append(out, []string{
				r.Dataset, r.Device.String(), label,
				ftoa(r.Runtimes[i].Seconds()), ftoa(r.Speedups[i]),
			})
		}
	}
	return header, out
}

// Figure7CSV flattens hit-rate series (the artifact's bd-*-hits.csv).
func Figure7CSV(series []Figure7Series) ([]string, [][]string) {
	header := []string{"dataset", "lookup", "hit_rate"}
	var out [][]string
	for _, s := range series {
		for i, v := range s.Rates {
			out = append(out, []string{s.Dataset, strconv.Itoa(i), ftoa(v)})
		}
	}
	return header, out
}

// Table4CSV flattens the cache-limit sweep.
func Table4CSV(cells []Table4Cell) ([]string, [][]string) {
	header := []string{"dataset", "limit", "runtime_s", "bytes", "hit_rate"}
	var out [][]string
	for _, c := range cells {
		out = append(out, []string{
			c.Dataset, strconv.Itoa(c.Limit),
			ftoa(c.Runtime.Seconds()), strconv.FormatInt(c.Bytes, 10), ftoa(c.HitRate),
		})
	}
	return header, out
}

// Table5CSV flattens the transfer accounts.
func Table5CSV(results []Table5Result) ([]string, [][]string) {
	header := []string{"dataset", "cache_on_device", "direction", "calls", "bytes", "time_s", "pct_of_total"}
	var out [][]string
	for _, r := range results {
		for d, x := range r.Transfers {
			dir := device.Direction(d)
			out = append(out, []string{
				r.Dataset, fmt.Sprint(r.OnDevice), dir.String(),
				strconv.FormatInt(x.Calls, 10), strconv.FormatInt(x.Bytes, 10),
				ftoa(x.Time.Seconds()), ftoa(r.Pct(dir)),
			})
		}
	}
	return header, out
}
