// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5): Table 1 (batch duplication), Figure 3
// (reuse vs recompute), Figure 4 (Δt distribution), Figure 5 (end-to-end
// inference runtime), Figure 6 (ablation), Figure 7 (hit-rate
// evolution), Table 3 (operation breakdown), Table 4 (cache-limit
// sweep), and Table 5 (cache placement transfer analysis). Each driver
// prints rows shaped like the paper's artifact output and returns a
// structured result for tests and the benchmark harness.
//
// Workloads are the synthetic Table 2 analogues from internal/dataset,
// shrunk by Setup.Scale so a full reproduction finishes on a laptop;
// cache limits scale along with the data (see EXPERIMENTS.md for the
// mapping to the paper's absolute settings).
package experiments

import (
	"fmt"
	"io"
	"time"

	"tgopt/internal/core"
	"tgopt/internal/dataset"
	"tgopt/internal/device"
	"tgopt/internal/graph"
	"tgopt/internal/stats"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

// Setup holds the experiment-wide knobs. The paper's settings are
// BatchSize 200, 2 layers, 2 heads, 20 neighbors, d=100, cache limit 2M,
// time window 10k on the full datasets; DefaultSetup shrinks data size,
// feature width and neighbor count proportionally so every experiment
// runs in minutes on one core.
type Setup struct {
	Scale      float64 // dataset scale factor
	BatchSize  int
	NodeDim    int // = EdgeDim = TimeDim
	Heads      int
	Layers     int
	K          int // sampled neighbors
	Runs       int // repetitions for runtime experiments
	CacheLimit int // 0 = paper's 2M scaled by Scale
	TimeWindow int
	Seed       uint64
}

// DefaultSetup returns the laptop-scale configuration used by the
// committed EXPERIMENTS.md numbers.
func DefaultSetup() Setup {
	return Setup{
		Scale:      0.004,
		BatchSize:  200,
		NodeDim:    32,
		Heads:      2,
		Layers:     2,
		K:          10,
		Runs:       3,
		TimeWindow: 10_000,
		Seed:       1,
	}
}

// EffectiveCacheLimit resolves the cache limit: explicit value, or the
// paper's 2M scaled with the data (floor 1024).
func (s Setup) EffectiveCacheLimit() int {
	if s.CacheLimit > 0 {
		return s.CacheLimit
	}
	lim := int(2_000_000 * s.Scale)
	if lim < 1024 {
		lim = 1024
	}
	return lim
}

// ModelConfig derives the TGAT configuration.
func (s Setup) ModelConfig() tgat.Config {
	return tgat.Config{
		Layers:       s.Layers,
		Heads:        s.Heads,
		NodeDim:      s.NodeDim,
		EdgeDim:      s.NodeDim,
		TimeDim:      s.NodeDim,
		NumNeighbors: s.K,
		Seed:         s.Seed,
	}
}

// Workload is a loaded dataset plus a model and sampler ready for
// inference.
type Workload struct {
	DS      *dataset.Dataset
	Model   *tgat.Model
	Sampler *graph.Sampler

	batchSize int // 0 = paper default 200
}

// LoadWorkload generates the named Table 2 analogue at the setup's
// scale and builds a model over it. Model parameters are seeded
// pseudo-randomly: inference runtime is weight-independent, and every
// semantics comparison runs baseline and TGOpt with the same weights.
func LoadWorkload(name string, s Setup) (*Workload, error) {
	spec, err := dataset.SpecByName(name)
	if err != nil {
		return nil, err
	}
	spec = spec.Scale(s.Scale)
	ds, err := dataset.Generate(spec, dataset.Options{FeatureDim: s.NodeDim})
	if err != nil {
		return nil, err
	}
	m, err := tgat.NewModel(s.ModelConfig(), ds.NodeFeat, ds.EdgeFeat)
	if err != nil {
		return nil, err
	}
	sampler := graph.NewSampler(ds.Graph, s.K, graph.MostRecent, s.Seed)
	return &Workload{DS: ds, Model: m, Sampler: sampler}, nil
}

// DeviceKind selects the measurement substrate for runtime experiments.
type DeviceKind int

const (
	// CPU measures host wall-clock time.
	CPU DeviceKind = iota
	// GPU runs the same computation under the simulated accelerator
	// cost model and reports simulated time (see internal/device).
	GPU
)

// String implements fmt.Stringer.
func (d DeviceKind) String() string {
	if d == GPU {
		return "gpu(sim)"
	}
	return "cpu"
}

// RunResult is one measured inference pass.
type RunResult struct {
	Runtime   time.Duration
	Collector *stats.Collector
	HitRate   *stats.HitRate
	Engine    *core.Engine
	Sim       *device.Sim
}

// RunInference executes the standard inference task once under the
// given options and device kind, returning the measured (CPU) or
// simulated (GPU) runtime plus all instrumentation.
func RunInference(w *Workload, opt core.Options, kind DeviceKind) *RunResult {
	col := stats.NewCollector()
	hr := stats.NewHitRate(10)
	opt.Collector = col
	opt.HitRate = hr
	var sim *device.Sim
	if kind == GPU {
		sim = device.NewSim(device.DefaultCostModel())
		opt.Device = sim
	}
	eng := core.NewEngine(w.Model, w.Sampler, opt)
	start := time.Now()
	tgat.StreamInference(w.DS.Graph, w.Model, batchSizeOf(w), eng.EmbedFunc())
	wall := time.Since(start)
	res := &RunResult{Collector: col, HitRate: hr, Engine: eng, Sim: sim}
	if kind == GPU {
		res.Runtime = col.Total()
	} else {
		res.Runtime = wall
	}
	return res
}

// batchSizeOf lets tests override the batch size per workload via the
// package-level knob without threading Setup everywhere.
func batchSizeOf(w *Workload) int {
	if w.batchSize > 0 {
		return w.batchSize
	}
	return 200
}

// SetBatchSize overrides the inference batch size for this workload.
func (w *Workload) SetBatchSize(n int) { w.batchSize = n }

// MeasureRuns repeats RunInference n times (fresh engine each run, as
// the paper's run-exp.sh does) and returns mean and standard deviation.
func MeasureRuns(w *Workload, opt core.Options, kind DeviceKind, n int) (mean, std time.Duration) {
	if n < 1 {
		n = 1
	}
	times := make([]float64, n)
	for i := 0; i < n; i++ {
		times[i] = RunInference(w, opt, kind).Runtime.Seconds()
	}
	var sum float64
	for _, t := range times {
		sum += t
	}
	m := sum / float64(n)
	var varsum float64
	for _, t := range times {
		varsum += (t - m) * (t - m)
	}
	return time.Duration(m * float64(time.Second)),
		time.Duration(sqrt(varsum/float64(n)) * float64(time.Second))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations are plenty for reporting purposes.
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// fprintf writes formatted output, ignoring nil writers so drivers can
// run silently inside tests and benchmarks.
func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

// baselineOptions returns the instrumented baseline configuration (all
// optimizations off).
func baselineOptions() core.Options { return core.Options{} }

// optAllScaled returns OptAll with the setup's scaled cache limit and
// window.
func optAllScaled(s Setup) core.Options {
	opt := core.OptAll()
	opt.CacheLimit = s.EffectiveCacheLimit()
	opt.TimeWindow = s.TimeWindow
	return opt
}

// rngFor derives a deterministic RNG for auxiliary sampling in drivers.
func rngFor(s Setup, salt uint64) *tensor.RNG { return tensor.NewRNG(s.Seed*1_000_000_007 + salt) }
