package experiments

import (
	"io"
	"math"

	"tgopt/internal/core"
	"tgopt/internal/stats"
)

// Figure3Point is one time bucket of the reuse-vs-recompute trend
// (paper Figure 3): how many embeddings were served from the cache
// (reused) versus computed (recomputed) for edges in this slice of the
// graph's lifetime.
type Figure3Point struct {
	Time       float64 // bucket upper bound (edge timestamp)
	Reused     int64
	Recomputed int64
}

// Figure3 replays the stream through a TGOpt engine with an effectively
// unbounded cache (the paper's analysis setting) and reports the
// reuse/recompute counts over `buckets` equal slices of the timeline.
func Figure3(w io.Writer, s Setup, name string, buckets int) ([]Figure3Point, error) {
	wl, err := LoadWorkload(name, s)
	if err != nil {
		return nil, err
	}
	if buckets < 1 {
		buckets = 20
	}
	opt := optAllScaled(s)
	opt.CacheLimit = 1 << 30 // unbounded for the redundancy analysis
	col := stats.NewCollector()
	opt.Collector = col
	eng := core.NewEngine(wl.Model, wl.Sampler, opt)

	edges := wl.DS.Graph.Edges()
	maxT := wl.DS.Graph.MaxTime()
	points := make([]Figure3Point, buckets)
	for i := range points {
		points[i].Time = maxT * float64(i+1) / float64(buckets)
	}
	var prevHits, prevLookups int64
	for start := 0; start < len(edges); start += s.BatchSize {
		end := start + s.BatchSize
		if end > len(edges) {
			end = len(edges)
		}
		batch := edges[start:end]
		nb := len(batch)
		nodes := make([]int32, 2*nb)
		ts := make([]float64, 2*nb)
		for i, e := range batch {
			nodes[i], nodes[nb+i] = e.Src, e.Dst
			ts[i], ts[nb+i] = e.Time, e.Time
		}
		eng.Embed(nodes, ts)
		hits := col.Counter("cache_hits")
		lookups := col.Counter("cache_lookups")
		dh := hits - prevHits
		dl := lookups - prevLookups
		prevHits, prevLookups = hits, lookups
		bi := bucketOf(batch[nb-1].Time, maxT, buckets)
		points[bi].Reused += dh
		points[bi].Recomputed += dl - dh
	}
	fprintf(w, "Figure 3: embeddings reused vs recomputed over time (%s)\n", name)
	fprintf(w, "%12s %12s %12s\n", "time", "reused", "recomputed")
	for _, p := range points {
		fprintf(w, "%12.3g %12d %12d\n", p.Time, p.Reused, p.Recomputed)
	}
	var totalReuse, totalRecompute int64
	for _, p := range points {
		totalReuse += p.Reused
		totalRecompute += p.Recomputed
	}
	if totalReuse+totalRecompute > 0 {
		fprintf(w, "overall reuse ratio: %.1f%%\n",
			100*float64(totalReuse)/float64(totalReuse+totalRecompute))
	}
	return points, nil
}

func bucketOf(t, maxT float64, buckets int) int {
	if maxT <= 0 {
		return 0
	}
	b := int(t / maxT * float64(buckets))
	if b >= buckets {
		b = buckets - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// Figure4Bucket is one bin of the Δt histogram (paper Figure 4), with
// geometric bin edges to expose the power-law head near zero.
type Figure4Bucket struct {
	Lo, Hi float64
	Count  int64
}

// Figure4 collects the time-delta values the time encoder processes
// during a full inference pass (after deduplication, as the optimized
// encoder sees them) and bins them geometrically.
func Figure4(w io.Writer, s Setup, name string, bins int) ([]Figure4Bucket, error) {
	wl, err := LoadWorkload(name, s)
	if err != nil {
		return nil, err
	}
	if bins < 2 {
		bins = 12
	}
	edges := wl.DS.Graph.Edges()
	var deltas []float64
	for start := 0; start < len(edges); start += s.BatchSize {
		end := start + s.BatchSize
		if end > len(edges) {
			end = len(edges)
		}
		batch := edges[start:end]
		nb := len(batch)
		nodes := make([]int32, 2*nb)
		ts := make([]float64, 2*nb)
		for i, e := range batch {
			nodes[i], nodes[nb+i] = e.Src, e.Dst
			ts[i], ts[nb+i] = e.Time, e.Time
		}
		for l := s.Layers; l >= 1; l-- {
			res := core.DedupFilter(nodes, ts)
			b := wl.Sampler.Sample(res.Nodes, res.Times)
			n := len(res.Nodes)
			for i := 0; i < n; i++ {
				for j := 0; j < b.K; j++ {
					p := i*b.K + j
					if b.Valid[p] {
						deltas = append(deltas, res.Times[i]-b.Times[p])
					}
				}
			}
			next := make([]int32, n+n*b.K)
			nextTs := make([]float64, n+n*b.K)
			copy(next, res.Nodes)
			copy(nextTs, res.Times)
			copy(next[n:], b.Nghs)
			copy(nextTs[n:], b.Times)
			nodes, ts = next, nextTs
		}
	}
	maxD := 1.0
	for _, d := range deltas {
		if d > maxD {
			maxD = d
		}
	}
	buckets := make([]Figure4Bucket, bins)
	// Geometric edges: [0,1), [1,r), [r,r²) ... covering maxD.
	r := math.Pow(maxD, 1/float64(bins-1))
	if r <= 1 {
		r = 2
	}
	lo := 0.0
	hi := 1.0
	for i := range buckets {
		buckets[i].Lo, buckets[i].Hi = lo, hi
		lo = hi
		hi *= r
	}
	for _, d := range deltas {
		for i := range buckets {
			if d < buckets[i].Hi || i == bins-1 {
				buckets[i].Count++
				break
			}
		}
	}
	fprintf(w, "Figure 4: distribution of time deltas seen by the time encoder (%s)\n", name)
	fprintf(w, "%14s %14s %12s\n", "dt >=", "dt <", "count")
	for _, b := range buckets {
		fprintf(w, "%14.4g %14.4g %12d\n", b.Lo, b.Hi, b.Count)
	}
	return buckets, nil
}
