package experiments

import (
	"io"
	"os"
	"path/filepath"
	"time"

	"tgopt/internal/core"
	"tgopt/internal/dataset"
	"tgopt/internal/stats"
	"tgopt/internal/tgat"
	"tgopt/internal/trainer"
)

// Table2Row compares a generated workload's statistics against the
// paper's published Table 2 (scaled by Setup.Scale).
type Table2Row struct {
	Dataset    string
	Bipartite  bool
	SpecNodes  int // scaled target
	SpecEdges  int
	GenNodes   int // what the generator produced
	GenEdges   int
	GenMaxTime float64
	MeanDegree float64
}

// Table2 generates every workload and reports its realized statistics —
// the reproduction of the paper's dataset summary table.
func Table2(w io.Writer, s Setup, names []string) ([]Table2Row, error) {
	fprintf(w, "Table 2: dataset statistics at scale %g\n", s.Scale)
	fprintf(w, "%-14s %-12s %8s %10s %10s %10s\n", "dataset", "kind", "|V|", "|E|", "max(t)", "mean deg")
	var rows []Table2Row
	for _, name := range names {
		spec, err := dataset.SpecByName(name)
		if err != nil {
			return nil, err
		}
		spec = spec.Scale(s.Scale)
		ds, err := dataset.Generate(spec, dataset.Options{FeatureDim: s.NodeDim})
		if err != nil {
			return nil, err
		}
		g := ds.Graph
		sumDeg := 0
		for v := int32(1); v <= int32(g.NumNodes()); v++ {
			sumDeg += g.Degree(v)
		}
		row := Table2Row{
			Dataset:    name,
			Bipartite:  spec.Bipartite,
			SpecNodes:  spec.NumNodes(),
			SpecEdges:  spec.Edges,
			GenNodes:   g.NumNodes(),
			GenEdges:   g.NumEdges(),
			GenMaxTime: g.MaxTime(),
			MeanDegree: float64(sumDeg) / float64(g.NumNodes()),
		}
		rows = append(rows, row)
		kind := "homogeneous"
		if spec.Bipartite {
			kind = "bipartite"
		}
		fprintf(w, "%-14s %-12s %8d %10d %10.3g %10.1f\n",
			name, kind, row.GenNodes, row.GenEdges, row.GenMaxTime, row.MeanDegree)
	}
	return rows, nil
}

// TrainDedupResult measures §7 training-time deduplication: wall time
// per epoch with the plain forward vs the deduplicated one.
type TrainDedupResult struct {
	Dataset    string
	Plain      time.Duration
	Dedup      time.Duration
	LossPlain  float64
	LossDedup  float64
	FinalDelta float64 // |loss difference| after the run
}

// Speedup returns plain/dedup.
func (r TrainDedupResult) Speedup() float64 {
	if r.Dedup <= 0 {
		return 0
	}
	return float64(r.Plain) / float64(r.Dedup)
}

// TrainDedup trains the same model twice from the same initialization —
// once with and once without the training-time deduplication filter —
// and reports wall time and final losses (which must agree closely,
// since dedup is semantics-preserving).
func TrainDedup(w io.Writer, s Setup, name string, epochs int) (*TrainDedupResult, error) {
	if epochs < 1 {
		epochs = 1
	}
	run := func(dedup bool) (time.Duration, float64, error) {
		wl, err := LoadWorkload(name, s)
		if err != nil {
			return 0, 0, err
		}
		cfg := trainer.Config{
			Epochs: epochs, BatchSize: s.BatchSize, LR: 1e-3,
			TrainFrac: 1.0, Seed: s.Seed, Dedup: dedup,
		}
		start := time.Now()
		res, err := trainer.Train(wl.Model, wl.DS.Graph, wl.Sampler, cfg)
		if err != nil {
			return 0, 0, err
		}
		return time.Since(start), res.EpochLoss[len(res.EpochLoss)-1], nil
	}
	plainT, plainL, err := run(false)
	if err != nil {
		return nil, err
	}
	dedupT, dedupL, err := run(true)
	if err != nil {
		return nil, err
	}
	res := &TrainDedupResult{
		Dataset: name, Plain: plainT, Dedup: dedupT,
		LossPlain: plainL, LossDedup: dedupL,
		FinalDelta: abs(plainL - dedupL),
	}
	fprintf(w, "Training-time dedup (%s, %d epochs): plain %.2fs, dedup %.2fs (%.2fx), final-loss delta %.2g\n",
		name, epochs, plainT.Seconds(), dedupT.Seconds(), res.Speedup(), res.FinalDelta)
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BatchSweepPoint is one batch-size measurement of the extra ablation:
// how the TGOpt speedup depends on the inference batch size (the paper
// fixes 200).
type BatchSweepPoint struct {
	BatchSize int
	Baseline  time.Duration
	Optimized time.Duration
}

// Speedup returns baseline/optimized.
func (p BatchSweepPoint) Speedup() float64 {
	if p.Optimized <= 0 {
		return 0
	}
	return float64(p.Baseline) / float64(p.Optimized)
}

// BatchSweep measures end-to-end runtime across batch sizes.
func BatchSweep(w io.Writer, s Setup, name string, sizes []int) ([]BatchSweepPoint, error) {
	wl, err := LoadWorkload(name, s)
	if err != nil {
		return nil, err
	}
	fprintf(w, "Batch-size sweep (%s)\n%10s %12s %12s %9s\n", name, "batch", "baseline", "tgopt", "speedup")
	var points []BatchSweepPoint
	for _, bs := range sizes {
		if bs < 1 {
			continue
		}
		wl.SetBatchSize(bs)
		base, _ := MeasureRuns(wl, baselineOptions(), CPU, s.Runs)
		opt, _ := MeasureRuns(wl, optAllScaled(s), CPU, s.Runs)
		p := BatchSweepPoint{BatchSize: bs, Baseline: base, Optimized: opt}
		points = append(points, p)
		fprintf(w, "%10d %11.3fs %11.3fs %8.2fx\n", bs, base.Seconds(), opt.Seconds(), p.Speedup())
	}
	return points, nil
}

// WarmStartResult measures the production value of cache persistence:
// how much faster the first batches of a restarted process run when the
// memoization cache is restored from disk instead of rebuilt.
type WarmStartResult struct {
	Dataset string
	Batches int
	Cold    time.Duration
	Warm    time.Duration
	WarmHit float64 // average hit rate over the measured batches
}

// Speedup returns cold/warm.
func (r WarmStartResult) Speedup() float64 {
	if r.Warm <= 0 {
		return 0
	}
	return float64(r.Cold) / float64(r.Warm)
}

// WarmStart warms an engine over the full stream, persists its caches,
// and compares a cold engine against a restored one on the stream's
// final `batches` batches (the region the warm cache covers best).
func WarmStart(w io.Writer, s Setup, name string, batches int) (*WarmStartResult, error) {
	wl, err := LoadWorkload(name, s)
	if err != nil {
		return nil, err
	}
	if batches < 1 {
		batches = 5
	}
	warmEng := core.NewEngine(wl.Model, wl.Sampler, optAllScaled(s))
	tgat.StreamInference(wl.DS.Graph, wl.Model, s.BatchSize, warmEng.EmbedFunc())
	dir, err := os.MkdirTemp("", "tgopt-warm")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "cache.bin")
	if err := warmEng.SaveCaches(snap); err != nil {
		return nil, err
	}

	edges := wl.DS.Graph.Edges()
	start := len(edges) - batches*s.BatchSize
	if start < 0 {
		start = 0
	}
	tail := edges[start:]
	run := func(eng *core.Engine) time.Duration {
		t0 := time.Now()
		for off := 0; off < len(tail); off += s.BatchSize {
			end := off + s.BatchSize
			if end > len(tail) {
				end = len(tail)
			}
			batch := tail[off:end]
			nb := len(batch)
			ns := make([]int32, 2*nb)
			ts := make([]float64, 2*nb)
			for i, e := range batch {
				ns[i], ns[nb+i] = e.Src, e.Dst
				ts[i], ts[nb+i] = e.Time, e.Time
			}
			eng.Embed(ns, ts)
		}
		return time.Since(t0)
	}

	coldOpt := optAllScaled(s)
	coldHR := stats.NewHitRate(10)
	coldOpt.HitRate = coldHR
	coldEng := core.NewEngine(wl.Model, wl.Sampler, coldOpt)
	coldT := run(coldEng)

	warmOpt := optAllScaled(s)
	warmHR := stats.NewHitRate(10)
	warmOpt.HitRate = warmHR
	restored := core.NewEngine(wl.Model, wl.Sampler, warmOpt)
	if err := restored.LoadCaches(snap); err != nil {
		return nil, err
	}
	warmT := run(restored)

	res := &WarmStartResult{
		Dataset: name, Batches: (len(tail) + s.BatchSize - 1) / s.BatchSize,
		Cold: coldT, Warm: warmT, WarmHit: warmHR.Average(),
	}
	fprintf(w, "Warm start (%s, last %d batches): cold %.3fs, warm %.3fs (%.2fx), warm hit rate %.1f%%\n",
		name, res.Batches, coldT.Seconds(), warmT.Seconds(), res.Speedup(), 100*res.WarmHit)
	return res, nil
}
