package experiments

import (
	"io"
	"time"

	"tgopt/internal/core"
)

// AblationStep names one configuration of the accumulative ablation
// (paper Figure 6): optimizations are enabled one at a time on top of
// the previous step.
type AblationStep struct {
	Label   string
	Options core.Options
}

// AblationSteps returns the paper's sequence: baseline → +cache →
// +dedup → +time-precompute.
func AblationSteps(s Setup) []AblationStep {
	limit := s.EffectiveCacheLimit()
	return []AblationStep{
		{Label: "baseline", Options: core.Options{}},
		{Label: "+cache", Options: core.Options{EnableCache: true, CacheLimit: limit}},
		{Label: "+dedup", Options: core.Options{EnableCache: true, EnableDedup: true, CacheLimit: limit}},
		{Label: "+time", Options: core.Options{
			EnableCache: true, EnableDedup: true, EnableTimePrecompute: true,
			CacheLimit: limit, TimeWindow: s.TimeWindow,
		}},
	}
}

// Figure6Row is one dataset's ablation trajectory.
type Figure6Row struct {
	Dataset  string
	Device   DeviceKind
	Labels   []string
	Runtimes []time.Duration
	Speedups []float64 // relative to the baseline step
}

// Figure6 runs the accumulative ablation for the given datasets (the
// paper uses jodie-lastfm and snap-msg) on the given device kind.
func Figure6(w io.Writer, s Setup, names []string, kind DeviceKind) ([]Figure6Row, error) {
	steps := AblationSteps(s)
	fprintf(w, "Figure 6: accumulative ablation speedup (%s)\n", kind)
	fprintf(w, "%-14s", "dataset")
	for _, st := range steps {
		fprintf(w, " %10s", st.Label)
	}
	fprintf(w, "\n")
	var rows []Figure6Row
	for _, name := range names {
		wl, err := LoadWorkload(name, s)
		if err != nil {
			return nil, err
		}
		wl.SetBatchSize(s.BatchSize)
		row := Figure6Row{Dataset: name, Device: kind}
		for _, st := range steps {
			mean, _ := MeasureRuns(wl, st.Options, kind, s.Runs)
			row.Labels = append(row.Labels, st.Label)
			row.Runtimes = append(row.Runtimes, mean)
		}
		base := row.Runtimes[0]
		for _, rt := range row.Runtimes {
			sp := 0.0
			if rt > 0 {
				sp = float64(base) / float64(rt)
			}
			row.Speedups = append(row.Speedups, sp)
		}
		rows = append(rows, row)
		fprintf(w, "%-14s", name)
		for _, sp := range row.Speedups {
			fprintf(w, " %9.2fx", sp)
		}
		fprintf(w, "\n")
	}
	return rows, nil
}
