package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"tgopt/internal/plot"
)

// Figure3SVG renders the reuse-vs-recompute trend as a two-series line
// chart, the shape of the paper's Figure 3.
func Figure3SVG(name string, points []Figure3Point) string {
	reused := plot.Series{Name: "reused"}
	recomputed := plot.Series{Name: "recomputed"}
	for _, p := range points {
		reused.X = append(reused.X, p.Time)
		reused.Y = append(reused.Y, float64(p.Reused))
		recomputed.X = append(recomputed.X, p.Time)
		recomputed.Y = append(recomputed.Y, float64(p.Recomputed))
	}
	return plot.LineChart("Embeddings reused vs recomputed ("+name+")",
		"edge timestamp", "embeddings", []plot.Series{reused, recomputed})
}

// Figure4SVG renders the Δt histogram.
func Figure4SVG(name string, buckets []Figure4Bucket) string {
	labels := make([]string, len(buckets))
	counts := make([]int64, len(buckets))
	for i, b := range buckets {
		labels[i] = fmt.Sprintf("<%.3g", b.Hi)
		counts[i] = b.Count
	}
	return plot.Histogram("Time-delta distribution ("+name+")", "Δt (geometric bins)", labels, counts)
}

// Figure5SVG renders the runtime comparison as grouped bars with error
// bars, one group per dataset.
func Figure5SVG(rows []Figure5Row) string {
	groups := make([]plot.BarGroup, len(rows))
	device := "cpu"
	for i, r := range rows {
		device = r.Device.String()
		groups[i] = plot.BarGroup{
			Label:  fmt.Sprintf("%s (%.1fx)", r.Dataset, r.Speedup()),
			Values: []float64{r.Baseline.Seconds(), r.Optimized.Seconds()},
			Errs:   []float64{r.BaselineStd.Seconds(), r.OptimizedStd.Seconds()},
		}
	}
	return plot.BarChart("Inference runtime, baseline vs TGOpt ("+device+")",
		"seconds", []string{"baseline", "tgopt"}, groups)
}

// Figure6SVG renders the accumulative ablation speedups.
func Figure6SVG(rows []Figure6Row) string {
	if len(rows) == 0 {
		return plot.BarChart("Ablation", "speedup", nil, nil)
	}
	groups := make([]plot.BarGroup, len(rows))
	for i, r := range rows {
		groups[i] = plot.BarGroup{Label: r.Dataset, Values: r.Speedups}
	}
	return plot.BarChart("Accumulative ablation speedup ("+rows[0].Device.String()+")",
		"speedup vs baseline", rows[0].Labels, groups)
}

// Figure7SVG renders hit-rate evolution, one series per dataset.
func Figure7SVG(series []Figure7Series) string {
	var ss []plot.Series
	for _, s := range series {
		ps := plot.Series{Name: s.Dataset}
		for i, r := range s.Rates {
			ps.X = append(ps.X, float64(i))
			ps.Y = append(ps.Y, 100*r)
		}
		ss = append(ss, ps)
	}
	return plot.LineChart("Cache hit rate evolution (window 10)", "cache lookup", "hit rate (%)", ss)
}

// WriteSVG writes an SVG document into dir with the given base name,
// creating dir if needed, and returns the full path.
func WriteSVG(dir, name, svg string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".svg")
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
