package experiments

import (
	"io"
	"time"

	"tgopt/internal/core"
	"tgopt/internal/device"
	"tgopt/internal/graph"
)

// Table4Cell is one (dataset, cache-limit) measurement: runtime under
// that limit and the cache memory actually used (paper Table 4).
type Table4Cell struct {
	Dataset string
	Limit   int
	Runtime time.Duration
	Bytes   int64
	HitRate float64
}

// Table4 sweeps the cache limit for each named dataset on the simulated
// GPU (the paper's Table 4 machine). Limits are the paper's
// {10K, 100K, 1M, 3M} scaled by Setup.Scale with a floor of 64, so the
// pressure on the cache matches the shrunken datasets.
func Table4(w io.Writer, s Setup, names []string, kind DeviceKind) ([]Table4Cell, error) {
	paperLimits := []int{10_000, 100_000, 1_000_000, 3_000_000}
	limits := make([]int, len(paperLimits))
	for i, pl := range paperLimits {
		limits[i] = int(float64(pl) * s.Scale)
		if limits[i] < 64 {
			limits[i] = 64
		}
	}
	fprintf(w, "Table 4: runtime and cache memory vs cache limit (%s; paper limits scaled by %g)\n", kind, s.Scale)
	fprintf(w, "%-14s", "dataset")
	for _, l := range limits {
		fprintf(w, " %12d", l)
	}
	fprintf(w, "\n")
	var cells []Table4Cell
	for _, name := range names {
		wl, err := LoadWorkload(name, s)
		if err != nil {
			return nil, err
		}
		wl.SetBatchSize(s.BatchSize)
		var rowCells []Table4Cell
		for _, limit := range limits {
			opt := optAllScaled(s)
			opt.CacheLimit = limit
			res := RunInference(wl, opt, kind)
			rowCells = append(rowCells, Table4Cell{
				Dataset: name, Limit: limit,
				Runtime: res.Runtime, Bytes: res.Engine.CacheBytes(),
				HitRate: res.HitRate.Average(),
			})
		}
		cells = append(cells, rowCells...)
		fprintf(w, "%-14s", name)
		for _, c := range rowCells {
			fprintf(w, " %11.3fs", c.Runtime.Seconds())
		}
		fprintf(w, "\n%-14s", "")
		for _, c := range rowCells {
			fprintf(w, " %10.2fMiB", float64(c.Bytes)/(1<<20))
		}
		fprintf(w, "\n")
	}
	return cells, nil
}

// Table5Result is the transfer-cost account of one dataset under one
// cache placement (paper Table 5): per-direction bytes, simulated time,
// and the share of total simulated device activity.
type Table5Result struct {
	Dataset   string
	OnDevice  bool
	Transfers [3]device.Transfer
	Total     time.Duration // total simulated runtime including kernels
}

// Pct returns direction d's share of the total simulated runtime.
func (r Table5Result) Pct(d device.Direction) float64 {
	if r.Total <= 0 {
		return 0
	}
	return 100 * float64(r.Transfers[d].Time) / float64(r.Total)
}

// Table5 compares host-resident vs device-resident cache storage under
// the simulated accelerator for each named dataset.
func Table5(w io.Writer, s Setup, names []string) ([]Table5Result, error) {
	fprintf(w, "Table 5: simulated data movement by cache placement\n")
	fprintf(w, "%-14s %-8s %22s %22s %22s\n", "dataset", "cache", "HtoD", "DtoH", "DtoD")
	var results []Table5Result
	for _, name := range names {
		wl, err := LoadWorkload(name, s)
		if err != nil {
			return nil, err
		}
		wl.SetBatchSize(s.BatchSize)
		for _, onDevice := range []bool{false, true} {
			opt := optAllScaled(s)
			opt.CacheOnDevice = onDevice
			res := RunInference(wl, opt, GPU)
			tr := Table5Result{
				Dataset:   name,
				OnDevice:  onDevice,
				Transfers: res.Sim.Transfers(),
				Total:     res.Runtime,
			}
			results = append(results, tr)
			place := "CPU"
			if onDevice {
				place = "GPU"
			}
			fprintf(w, "%-14s %-8s", name, place)
			for _, d := range []device.Direction{device.HtoD, device.DtoH, device.DtoD} {
				x := tr.Transfers[d]
				fprintf(w, " %9.4fs (%5.2f%%)", x.Time.Seconds(), tr.Pct(d))
			}
			fprintf(w, "\n")
		}
	}
	return results, nil
}

// Figure7Series is the sliding-window hit-rate trajectory of one
// dataset (paper Figure 7; window of 10 batches).
type Figure7Series struct {
	Dataset string
	Rates   []float64
}

// Figure7 runs TGOpt once per dataset and reports the windowed hit-rate
// series.
func Figure7(w io.Writer, s Setup, names []string) ([]Figure7Series, error) {
	var out []Figure7Series
	for _, name := range names {
		wl, err := LoadWorkload(name, s)
		if err != nil {
			return nil, err
		}
		wl.SetBatchSize(s.BatchSize)
		res := RunInference(wl, optAllScaled(s), CPU)
		series := Figure7Series{Dataset: name, Rates: res.HitRate.Windowed()}
		out = append(out, series)
		fprintf(w, "Figure 7: cache hit rate evolution (%s, window 10)\n", name)
		step := len(series.Rates)/20 + 1
		for i := 0; i < len(series.Rates); i += step {
			fprintf(w, "lookup %6d: %6.2f%%\n", i, 100*series.Rates[i])
		}
		if n := len(series.Rates); n > 0 {
			fprintf(w, "final: %6.2f%%\n\n", 100*series.Rates[n-1])
		}
	}
	return out, nil
}

// SamplingComparison contrasts most-recent and uniform sampling (a §7
// future-work probe): with uniform sampling the memoization cache is
// unsound, so TGOpt can only apply dedup + time precompute; the row
// reports the achievable speedup under each strategy.
type SamplingComparison struct {
	Dataset           string
	MostRecentSpeedup float64
	UniformSpeedup    float64
}

func newUniformSampler(wl *Workload, s Setup) *graph.Sampler {
	return graph.NewSampler(wl.DS.Graph, s.K, graph.Uniform, s.Seed)
}

// CompareSampling measures the optimization headroom per strategy.
func CompareSampling(w io.Writer, s Setup, name string) (*SamplingComparison, error) {
	wl, err := LoadWorkload(name, s)
	if err != nil {
		return nil, err
	}
	wl.SetBatchSize(s.BatchSize)
	base, _ := MeasureRuns(wl, baselineOptions(), CPU, s.Runs)
	full, _ := MeasureRuns(wl, optAllScaled(s), CPU, s.Runs)

	// Uniform sampling: rebuild the workload around a uniform sampler
	// and disable the (unsound) cache.
	uwl := &Workload{DS: wl.DS, Model: wl.Model}
	uwl.Sampler = newUniformSampler(wl, s)
	uwl.SetBatchSize(s.BatchSize)
	ubase, _ := MeasureRuns(uwl, baselineOptions(), CPU, s.Runs)
	uopt := core.Options{EnableDedup: true, EnableTimePrecompute: true, TimeWindow: s.TimeWindow}
	ufull, _ := MeasureRuns(uwl, uopt, CPU, s.Runs)

	res := &SamplingComparison{
		Dataset:           name,
		MostRecentSpeedup: float64(base) / float64(full),
		UniformSpeedup:    float64(ubase) / float64(ufull),
	}
	fprintf(w, "Sampling ablation (%s): most-recent %.2fx (all opts) vs uniform %.2fx (dedup+time only)\n",
		name, res.MostRecentSpeedup, res.UniformSpeedup)
	return res, nil
}
