package experiments

import (
	"io"
	"math"
	"time"
)

// Figure5Row is one dataset's end-to-end inference measurement: the
// baseline (unoptimized TGAT) and TGOpt runtimes with standard
// deviations, and the resulting speedup — one bar pair of the paper's
// Figure 5.
type Figure5Row struct {
	Dataset      string
	Device       DeviceKind
	Baseline     time.Duration
	BaselineStd  time.Duration
	Optimized    time.Duration
	OptimizedStd time.Duration
}

// Speedup returns baseline/optimized.
func (r Figure5Row) Speedup() float64 {
	if r.Optimized <= 0 {
		return 0
	}
	return float64(r.Baseline) / float64(r.Optimized)
}

// Figure5 runs the standard inference task for every named dataset,
// baseline then TGOpt, averaging over Setup.Runs runs (the paper
// averages 10), on the given device kind.
func Figure5(w io.Writer, s Setup, names []string, kind DeviceKind) ([]Figure5Row, error) {
	fprintf(w, "Figure 5: inference runtime, baseline vs TGOpt (%s, %d runs, batch %d)\n",
		kind, s.Runs, s.BatchSize)
	fprintf(w, "%-14s %14s %14s %9s\n", "dataset", "baseline", "tgopt", "speedup")
	var rows []Figure5Row
	for _, name := range names {
		wl, err := LoadWorkload(name, s)
		if err != nil {
			return nil, err
		}
		wl.SetBatchSize(s.BatchSize)
		base, baseStd := MeasureRuns(wl, baselineOptions(), kind, s.Runs)
		opt, optStd := MeasureRuns(wl, optAllScaled(s), kind, s.Runs)
		row := Figure5Row{
			Dataset: name, Device: kind,
			Baseline: base, BaselineStd: baseStd,
			Optimized: opt, OptimizedStd: optStd,
		}
		rows = append(rows, row)
		fprintf(w, "%-14s %11.3fs±%.2f %11.3fs±%.2f %8.2fx\n",
			name, base.Seconds(), baseStd.Seconds(), opt.Seconds(), optStd.Seconds(), row.Speedup())
	}
	fprintf(w, "geomean speedup: %.2fx\n", geomeanSpeedup(rows))
	return rows, nil
}

func geomeanSpeedup(rows []Figure5Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	prod := 1.0
	for _, r := range rows {
		prod *= r.Speedup()
	}
	return math.Pow(prod, 1/float64(len(rows)))
}
