package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"tgopt/internal/device"
	"tgopt/internal/stats"
)

// tinySetup keeps tests fast: ~1-3k edges for the largest dataset.
func tinySetup() Setup {
	return Setup{
		Scale:      0.002,
		BatchSize:  100,
		NodeDim:    16,
		Heads:      2,
		Layers:     2,
		K:          5,
		Runs:       1,
		TimeWindow: 10_000,
		Seed:       1,
	}
}

func TestLoadWorkload(t *testing.T) {
	s := tinySetup()
	wl, err := LoadWorkload("snap-msg", s)
	if err != nil {
		t.Fatal(err)
	}
	if wl.DS.Graph.NumEdges() == 0 {
		t.Fatal("empty workload")
	}
	if wl.Model.Cfg.NodeDim != 16 || wl.Sampler.K() != 5 {
		t.Fatal("setup not applied")
	}
	if _, err := LoadWorkload("nope", s); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestSetupHelpers(t *testing.T) {
	s := DefaultSetup()
	if s.EffectiveCacheLimit() != 8000 {
		t.Fatalf("default scaled cache limit = %d", s.EffectiveCacheLimit())
	}
	s.CacheLimit = 123
	if s.EffectiveCacheLimit() != 123 {
		t.Fatal("explicit cache limit ignored")
	}
	s.CacheLimit = 0
	s.Scale = 1e-9
	if s.EffectiveCacheLimit() != 1024 {
		t.Fatal("cache limit floor missing")
	}
	if CPU.String() != "cpu" || GPU.String() != "gpu(sim)" {
		t.Fatal("DeviceKind strings wrong")
	}
	if err := DefaultSetup().ModelConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTable1DuplicationShape(t *testing.T) {
	s := tinySetup()
	var buf bytes.Buffer
	rows, err := Table1(&buf, s, []string{"jodie-mooc", "snap-msg"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Layer) != s.Layers+1 {
			t.Fatalf("%s: %d layer entries", r.Dataset, len(r.Layer))
		}
		// The paper's Table 1 shape: duplication increases down the
		// layers (layer 0 ≫ layer L).
		if r.Layer[0] <= r.Layer[s.Layers] {
			t.Fatalf("%s: layer-0 dup %.2f not above layer-%d dup %.2f",
				r.Dataset, r.Layer[0], s.Layers, r.Layer[s.Layers])
		}
		if r.Layer[0] < 0.5 {
			t.Fatalf("%s: layer-0 dup %.2f implausibly low", r.Dataset, r.Layer[0])
		}
		for l, v := range r.Layer {
			if v < 0 || v > 1 {
				t.Fatalf("%s layer %d ratio %v out of [0,1]", r.Dataset, l, v)
			}
		}
	}
	if !strings.Contains(buf.String(), "jodie-mooc") {
		t.Fatal("output missing dataset name")
	}
}

func TestFigure3ReuseOvertakesRecompute(t *testing.T) {
	s := tinySetup()
	points, err := Figure3(nil, s, "jodie-lastfm", 10)
	if err != nil {
		t.Fatal(err)
	}
	var reuse, recompute int64
	for _, p := range points {
		reuse += p.Reused
		recompute += p.Recomputed
	}
	if recompute == 0 {
		t.Fatal("nothing recomputed (cache cannot be prefilled)")
	}
	if reuse == 0 {
		t.Fatal("nothing reused on a repetitive dataset")
	}
	// The Figure 3 trend: late-lifetime buckets reuse more than the
	// first bucket.
	last := points[len(points)-1]
	if last.Reused == 0 && last.Recomputed == 0 {
		// Last bucket may be empty at tiny scale; find the last nonempty.
		for i := len(points) - 1; i >= 0; i-- {
			if points[i].Reused+points[i].Recomputed > 0 {
				last = points[i]
				break
			}
		}
	}
	if points[0].Reused >= last.Reused && last.Reused == 0 {
		t.Fatal("reuse did not grow over the lifetime")
	}
}

func TestFigure4HeavyHead(t *testing.T) {
	// snap-msg at the test scale has too few edges for the distribution
	// to develop its head; jodie-mooc (many events per item) shows it.
	s := tinySetup()
	buckets, err := Figure4(nil, s, "jodie-mooc", 12)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, b := range buckets {
		total += b.Count
	}
	if total == 0 {
		t.Fatal("no deltas collected")
	}
	// Heavy tail: the bucket mass must be concentrated well below the
	// distribution's midpoint-by-value — i.e. most deltas live in
	// buckets whose upper edge is under the geometric middle of the
	// range (right-skewed, power-law-like).
	mid := buckets[len(buckets)-1].Hi
	var below int64
	for _, b := range buckets {
		if b.Hi <= mid/16 { // four geometric decades below the max edge
			below += b.Count
		}
	}
	if float64(below) < 0.5*float64(total) {
		t.Fatalf("Δt distribution not heavy-tailed: %d of %d below max/16", below, total)
	}
}

func TestFigure5SpeedupOnRepetitiveData(t *testing.T) {
	s := tinySetup()
	var buf bytes.Buffer
	rows, err := Figure5(&buf, s, []string{"jodie-lastfm"}, CPU)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if sp := rows[0].Speedup(); sp <= 1.0 {
		t.Fatalf("TGOpt slower than baseline: %.2fx", sp)
	}
	if !strings.Contains(buf.String(), "geomean") {
		t.Fatal("missing geomean line")
	}
}

func TestFigure5SimulatedGPU(t *testing.T) {
	s := tinySetup()
	rows, err := Figure5(nil, s, []string{"jodie-lastfm"}, GPU)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Baseline <= 0 || rows[0].Optimized <= 0 {
		t.Fatal("simulated runtimes not positive")
	}
	if sp := rows[0].Speedup(); sp <= 1.0 {
		t.Fatalf("simulated GPU speedup = %.2fx, want > 1", sp)
	}
}

func TestFigure6AblationMonotoneFromCache(t *testing.T) {
	s := tinySetup()
	rows, err := Figure6(nil, s, []string{"jodie-lastfm"}, CPU)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if len(r.Speedups) != 4 {
		t.Fatalf("steps = %d", len(r.Speedups))
	}
	if r.Speedups[0] != 1 {
		t.Fatalf("baseline step speedup = %v", r.Speedups[0])
	}
	if r.Speedups[1] <= 1 {
		t.Fatalf("+cache step did not speed up: %v", r.Speedups)
	}
	if r.Speedups[3] <= 1 {
		t.Fatalf("full TGOpt not faster than baseline: %v", r.Speedups)
	}
}

func TestTable3BreakdownShape(t *testing.T) {
	s := tinySetup()
	var buf bytes.Buffer
	results, err := Table3(&buf, s, []string{"jodie-lastfm"}, CPU)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Baseline[stats.OpAttention] <= 0 || r.Optimized[stats.OpAttention] <= 0 {
		t.Fatal("attention timings missing")
	}
	// TGOpt must cut the attention cost (the paper's headline effect).
	if r.Optimized[stats.OpAttention] >= r.Baseline[stats.OpAttention] {
		t.Fatalf("attention not reduced: base %v, ours %v",
			r.Baseline[stats.OpAttention], r.Optimized[stats.OpAttention])
	}
	// Baseline must not contain TGOpt-only ops.
	if r.Baseline[stats.OpCacheLookup] != 0 || r.Baseline[stats.OpDedupFilter] != 0 {
		t.Fatal("baseline recorded TGOpt-only operations")
	}
	if r.HitRate <= 0 || r.HitRate > 1 {
		t.Fatalf("hit rate %v", r.HitRate)
	}
	if r.CacheBytes <= 0 || r.CacheItems <= 0 {
		t.Fatal("cache accounting missing")
	}
	out := buf.String()
	if !strings.Contains(out, "avg hit rate") || !strings.Contains(out, "used cache size") {
		t.Fatal("output missing metrics")
	}
}

func TestTable4LimitSweep(t *testing.T) {
	s := tinySetup()
	cells, err := Table4(nil, s, []string{"jodie-lastfm"}, GPU)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	// Memory usage and hit rate are non-decreasing in the limit (both
	// deterministic, unlike runtime).
	for i := 1; i < len(cells); i++ {
		if cells[i].Bytes < cells[i-1].Bytes {
			t.Fatalf("memory decreased with larger limit: %v", cells)
		}
		if cells[i].Limit < cells[i-1].Limit {
			t.Fatal("limits not increasing")
		}
		if cells[i].HitRate+1e-9 < cells[i-1].HitRate {
			t.Fatalf("hit rate decreased with larger limit: %v then %v",
				cells[i-1].HitRate, cells[i].HitRate)
		}
	}
	// A starved cache must hit far less than a roomy one.
	if cells[3].HitRate < 2*cells[0].HitRate {
		t.Fatalf("limit sweep shows no pressure: %v vs %v", cells[0].HitRate, cells[3].HitRate)
	}
	// Runtime trend, with slack for host-timing noise in the simulated
	// conversion: the largest limit must not be meaningfully slower.
	if float64(cells[3].Runtime) > 1.10*float64(cells[0].Runtime) {
		t.Fatalf("larger cache slower: %v vs %v", cells[3].Runtime, cells[0].Runtime)
	}
}

func TestTable5DtoDDominatesOnDevice(t *testing.T) {
	s := tinySetup()
	results, err := Table5(nil, s, []string{"jodie-lastfm"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	host, dev := results[0], results[1]
	if host.OnDevice || !dev.OnDevice {
		t.Fatal("placement order wrong")
	}
	if dev.Transfers[device.DtoD].Time <= host.Transfers[device.DtoD].Time {
		t.Fatal("device-resident cache did not increase DtoD time")
	}
	if dev.Pct(device.DtoD) <= host.Pct(device.DtoD) {
		t.Fatal("DtoD share did not grow with device-resident cache")
	}
}

func TestFigure7HitRateRises(t *testing.T) {
	s := tinySetup()
	series, err := Figure7(nil, s, []string{"jodie-lastfm"})
	if err != nil {
		t.Fatal(err)
	}
	rates := series[0].Rates
	if len(rates) < 5 {
		t.Fatalf("too few lookups recorded: %d", len(rates))
	}
	if rates[len(rates)-1] <= rates[0] {
		t.Fatalf("hit rate did not rise: first %v last %v", rates[0], rates[len(rates)-1])
	}
}

func TestCompareSampling(t *testing.T) {
	s := tinySetup()
	res, err := CompareSampling(nil, s, "jodie-lastfm")
	if err != nil {
		t.Fatal(err)
	}
	if res.MostRecentSpeedup <= res.UniformSpeedup {
		t.Fatalf("most-recent (cacheable) speedup %.2f not above uniform %.2f",
			res.MostRecentSpeedup, res.UniformSpeedup)
	}
}

func TestMeasureRunsStd(t *testing.T) {
	s := tinySetup()
	wl, err := LoadWorkload("snap-msg", s)
	if err != nil {
		t.Fatal(err)
	}
	mean, std := MeasureRuns(wl, baselineOptions(), CPU, 2)
	if mean <= 0 {
		t.Fatal("mean not positive")
	}
	if std < 0 {
		t.Fatal("negative std")
	}
	// n<1 clamps to 1.
	m2, _ := MeasureRuns(wl, baselineOptions(), CPU, 0)
	if m2 <= 0 {
		t.Fatal("clamped run count broken")
	}
}

func TestTable2StatisticsMatchSpecs(t *testing.T) {
	s := tinySetup()
	rows, err := Table2(nil, s, []string{"jodie-lastfm", "snap-msg"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.GenEdges != r.SpecEdges {
			t.Fatalf("%s: generated %d edges, spec %d", r.Dataset, r.GenEdges, r.SpecEdges)
		}
		if r.GenNodes != r.SpecNodes {
			t.Fatalf("%s: generated %d nodes, spec %d", r.Dataset, r.GenNodes, r.SpecNodes)
		}
		if r.MeanDegree <= 0 {
			t.Fatalf("%s: zero mean degree", r.Dataset)
		}
	}
	if !rows[0].Bipartite || rows[1].Bipartite {
		t.Fatal("bipartite flags wrong")
	}
}

func TestTrainDedupFaithfulAndMeasured(t *testing.T) {
	s := tinySetup()
	s.Layers = 1 // keep the training fast
	res, err := TrainDedup(nil, s, "snap-msg", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plain <= 0 || res.Dedup <= 0 {
		t.Fatal("timings not positive")
	}
	// Dedup must not change what is learned.
	if res.FinalDelta > 1e-4 {
		t.Fatalf("dedup changed the training trajectory: delta %g", res.FinalDelta)
	}
}

func TestBatchSweep(t *testing.T) {
	s := tinySetup()
	points, err := BatchSweep(nil, s, "jodie-wiki", []int{50, 200, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 { // the zero size is skipped
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Baseline <= 0 || p.Optimized <= 0 {
			t.Fatalf("batch %d: non-positive runtimes", p.BatchSize)
		}
	}
}

func TestFigureSVGAdapters(t *testing.T) {
	s := tinySetup()
	points, err := Figure3(nil, s, "jodie-lastfm", 8)
	if err != nil {
		t.Fatal(err)
	}
	if svg := Figure3SVG("jodie-lastfm", points); !strings.Contains(svg, "<svg") || !strings.Contains(svg, "reused") {
		t.Fatal("Figure3SVG malformed")
	}
	buckets, err := Figure4(nil, s, "jodie-mooc", 8)
	if err != nil {
		t.Fatal(err)
	}
	if svg := Figure4SVG("jodie-mooc", buckets); !strings.Contains(svg, "Time-delta") {
		t.Fatal("Figure4SVG malformed")
	}
	rows, err := Figure5(nil, s, []string{"snap-msg"}, CPU)
	if err != nil {
		t.Fatal(err)
	}
	if svg := Figure5SVG(rows); !strings.Contains(svg, "snap-msg") {
		t.Fatal("Figure5SVG malformed")
	}
	arows, err := Figure6(nil, s, []string{"snap-msg"}, CPU)
	if err != nil {
		t.Fatal(err)
	}
	if svg := Figure6SVG(arows); !strings.Contains(svg, "+cache") {
		t.Fatal("Figure6SVG malformed")
	}
	if svg := Figure6SVG(nil); !strings.Contains(svg, "<svg") {
		t.Fatal("empty Figure6SVG malformed")
	}
	series, err := Figure7(nil, s, []string{"snap-msg"})
	if err != nil {
		t.Fatal(err)
	}
	if svg := Figure7SVG(series); !strings.Contains(svg, "hit rate") {
		t.Fatal("Figure7SVG malformed")
	}
	dir := t.TempDir()
	path, err := WriteSVG(dir, "x", Figure7SVG(series))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestWarmStartBeatsCold(t *testing.T) {
	s := tinySetup()
	res, err := WarmStart(nil, s, "jodie-lastfm", 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cold <= 0 || res.Warm <= 0 || res.Batches < 1 {
		t.Fatalf("degenerate result %+v", res)
	}
	// The restored cache must produce immediate hits on the stream tail.
	if res.WarmHit <= 0 {
		t.Fatal("warm engine had no cache hits")
	}
	// Warm should not be slower than cold beyond noise.
	if float64(res.Warm) > 1.2*float64(res.Cold) {
		t.Fatalf("warm start slower than cold: %v vs %v", res.Warm, res.Cold)
	}
}

func TestCSVEmitters(t *testing.T) {
	dir := t.TempDir()
	h, rows := Table1CSV([]Table1Row{{Dataset: "d", Layer: []float64{0.9, 0.5, 0}}})
	if len(h) != 3 || len(rows) != 3 {
		t.Fatalf("Table1CSV %d header cols, %d rows", len(h), len(rows))
	}
	path, err := WriteCSVFile(dir, "t1", h, rows)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "dataset,layer,duplication\n") {
		t.Fatalf("csv header wrong: %q", data[:40])
	}
	// The remaining adapters produce aligned rows.
	if h, rs := Figure5CSV([]Figure5Row{{Dataset: "d"}}); len(h) != 7 || len(rs[0]) != 7 {
		t.Fatal("Figure5CSV misaligned")
	}
	if h, rs := Figure6CSV([]Figure6Row{{Dataset: "d", Labels: []string{"a"}, Runtimes: []time.Duration{1}, Speedups: []float64{1}}}); len(h) != 5 || len(rs[0]) != 5 {
		t.Fatal("Figure6CSV misaligned")
	}
	if h, rs := Figure7CSV([]Figure7Series{{Dataset: "d", Rates: []float64{0.5}}}); len(h) != 3 || len(rs[0]) != 3 {
		t.Fatal("Figure7CSV misaligned")
	}
	if h, rs := Figure3CSV([]Figure3Point{{Time: 1}}); len(h) != 3 || len(rs[0]) != 3 {
		t.Fatal("Figure3CSV misaligned")
	}
	if h, rs := Table4CSV([]Table4Cell{{Dataset: "d"}}); len(h) != 5 || len(rs[0]) != 5 {
		t.Fatal("Table4CSV misaligned")
	}
	if h, rs := Table5CSV([]Table5Result{{Dataset: "d"}}); len(h) != 7 || len(rs) != 3 || len(rs[0]) != 7 {
		t.Fatal("Table5CSV misaligned")
	}
}
