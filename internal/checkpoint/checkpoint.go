// Package checkpoint provides crash-safe snapshot files for every
// persistence surface in the system (embedding caches, model
// parameters, trainer state). A snapshot is a small versioned envelope
//
//	magic   uint32 = 0x4B434754 ("TGCK" on disk, little-endian)
//	version uint32              payload format version (caller-defined)
//	length  uint64              payload byte count
//	payload [length]byte
//	crc32   uint32              IEEE CRC32 over header + payload
//
// written atomically: encode to path.tmp, fsync the file, rename over
// path, then fsync the directory so the rename itself is durable. A
// crash at any point leaves either the previous snapshot or the new
// one on disk — never a torn file. Readers validate the magic, length,
// and checksum before a single payload byte reaches the decoder, so
// torn or bit-flipped files surface as a clean ErrCorrupt instead of a
// half-applied load.
//
// The file-system surface is injectable (FS) so tests can drive the
// writer through internal/faultfs and prove the atomicity contract
// under short writes, ENOSPC-style errors, and failed renames.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Magic identifies a checkpoint envelope ("TGCK" little-endian).
const Magic uint32 = 0x4B434754

const (
	headerSize  = 16 // magic + version + length
	trailerSize = 4  // crc32
)

var (
	// ErrCorrupt reports an envelope that fails validation: truncated
	// header, payload length mismatch, or checksum mismatch. The
	// on-disk file was torn or bit-flipped; the payload was not
	// decoded and no state was applied.
	ErrCorrupt = errors.New("corrupt checkpoint")
	// ErrNotCheckpoint reports a file that does not start with the
	// envelope magic — usually a legacy pre-envelope snapshot that the
	// caller may want to parse with its old reader.
	ErrNotCheckpoint = errors.New("not a checkpoint file")
)

// File is the writable-file surface the atomic writer needs.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the file-system operations of the atomic write path —
// plus the directory scanning a multi-file store (core.SpillStore)
// needs to recover after a crash — so tests can inject faults (see
// internal/faultfs) and every read a recovery performs goes through
// the same injectable surface as the writes. OS is the real one.
type FS interface {
	Create(name string) (File, error)
	Open(name string) (io.ReadCloser, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// SyncDir fsyncs the directory so a completed rename survives a
	// power loss.
	SyncDir(dir string) error
	// MkdirAll, ReadDir and Stat back crash recovery of multi-file
	// stores: creating the store directory, enumerating its surviving
	// files, and sizing them.
	MkdirAll(dir string, perm os.FileMode) error
	ReadDir(dir string) ([]os.DirEntry, error)
	Stat(name string) (os.FileInfo, error)
}

// OS is the real file system.
type OS struct{}

func (OS) Create(name string) (File, error)            { return os.Create(name) }
func (OS) Open(name string) (io.ReadCloser, error)     { return os.Open(name) }
func (OS) Rename(oldpath, newpath string) error        { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                    { return os.Remove(name) }
func (OS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }
func (OS) ReadDir(dir string) ([]os.DirEntry, error)   { return os.ReadDir(dir) }
func (OS) Stat(name string) (os.FileInfo, error)       { return os.Stat(name) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Encode renders a complete envelope to memory: the payload produced
// by encode, framed by the header and trailing checksum.
func Encode(version uint32, encode func(io.Writer) error) ([]byte, error) {
	var payload bytes.Buffer
	if err := encode(&payload); err != nil {
		return nil, fmt.Errorf("checkpoint: encoding payload: %w", err)
	}
	buf := make([]byte, headerSize+payload.Len()+trailerSize)
	binary.LittleEndian.PutUint32(buf[0:], Magic)
	binary.LittleEndian.PutUint32(buf[4:], version)
	binary.LittleEndian.PutUint64(buf[8:], uint64(payload.Len()))
	copy(buf[headerSize:], payload.Bytes())
	end := headerSize + payload.Len()
	binary.LittleEndian.PutUint32(buf[end:], crc32.ChecksumIEEE(buf[:end]))
	return buf, nil
}

// Decode validates an in-memory envelope and hands the payload to
// decode. The checksum is verified first: decode never sees a byte of
// a corrupt payload.
func Decode(data []byte, decode func(version uint32, r io.Reader) error) error {
	if len(data) < 4 || binary.LittleEndian.Uint32(data) != Magic {
		return fmt.Errorf("%w (no envelope magic)", ErrNotCheckpoint)
	}
	if len(data) < headerSize+trailerSize {
		return fmt.Errorf("%w: %d bytes is shorter than the envelope", ErrCorrupt, len(data))
	}
	version := binary.LittleEndian.Uint32(data[4:])
	length := binary.LittleEndian.Uint64(data[8:])
	if got := uint64(len(data) - headerSize - trailerSize); got != length {
		return fmt.Errorf("%w: payload is %d bytes, envelope says %d", ErrCorrupt, got, length)
	}
	end := headerSize + int(length)
	want := binary.LittleEndian.Uint32(data[end:])
	if got := crc32.ChecksumIEEE(data[:end]); got != want {
		return fmt.Errorf("%w: CRC32 %08x, envelope says %08x", ErrCorrupt, got, want)
	}
	if err := decode(version, bytes.NewReader(data[headerSize:end])); err != nil {
		return fmt.Errorf("checkpoint payload: %w", err)
	}
	return nil
}

// Write atomically replaces path with a new snapshot. The payload is
// fully encoded in memory first, so a failing encoder never touches
// the disk; then the envelope goes through the tmp+fsync+rename+fsync
// sequence. On any error the previous snapshot at path is untouched.
func Write(path string, version uint32, encode func(io.Writer) error) error {
	return WriteFS(OS{}, path, version, encode)
}

// WriteFS is Write over an injectable file system.
func WriteFS(fsys FS, path string, version uint32, encode func(io.Writer) error) error {
	data, err := Encode(version, encode)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: creating %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: closing %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: publishing %s: %w", path, err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		// The rename already happened; the snapshot is visible but its
		// durability across power loss is not guaranteed. Report it.
		return fmt.Errorf("checkpoint: syncing directory of %s: %w", path, err)
	}
	return nil
}

// Read opens path, validates the envelope, and hands the payload to
// decode. A missing file returns the bare *os.PathError (so callers
// can errors.Is(err, fs.ErrNotExist)); a pre-envelope file returns
// ErrNotCheckpoint; a torn or bit-flipped file returns ErrCorrupt.
func Read(path string, decode func(version uint32, r io.Reader) error) error {
	return ReadFS(OS{}, path, decode)
}

// ReadFS is Read over an injectable file system.
func ReadFS(fsys FS, path string, decode func(version uint32, r io.Reader) error) error {
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	data, rerr := io.ReadAll(f)
	cerr := f.Close()
	if rerr != nil {
		return fmt.Errorf("checkpoint: reading %s: %w", path, rerr)
	}
	if cerr != nil {
		return fmt.Errorf("checkpoint: closing %s: %w", path, cerr)
	}
	return Decode(data, decode)
}
