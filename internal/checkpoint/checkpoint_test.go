package checkpoint_test

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"tgopt/internal/faultfs"

	. "tgopt/internal/checkpoint"
)

func payload(b []byte) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	}
}

func readBack(t *testing.T, path string, wantVersion uint32) []byte {
	t.Helper()
	var got []byte
	err := Read(path, func(version uint32, r io.Reader) error {
		if version != wantVersion {
			t.Fatalf("version = %d, want %d", version, wantVersion)
		}
		var rerr error
		got, rerr = io.ReadAll(r)
		return rerr
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.bin")
	body := []byte("hello snapshot")
	if err := Write(path, 7, payload(body)); err != nil {
		t.Fatal(err)
	}
	if got := readBack(t, path, 7); string(got) != string(body) {
		t.Fatalf("payload = %q, want %q", got, body)
	}
	// No tmp file left behind.
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("tmp file survived the rename: %v", err)
	}
}

func TestWriteEmptyPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.bin")
	if err := Write(path, 1, payload(nil)); err != nil {
		t.Fatal(err)
	}
	if got := readBack(t, path, 1); len(got) != 0 {
		t.Fatalf("payload = %q, want empty", got)
	}
}

func TestReadMissingFileIsErrNotExist(t *testing.T) {
	err := Read(filepath.Join(t.TempDir(), "nope.bin"), func(uint32, io.Reader) error { return nil })
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file error = %v, want fs.ErrNotExist", err)
	}
}

func TestReadLegacyFileIsErrNotCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.bin")
	if err := os.WriteFile(path, []byte{3, 0, 0, 0, 9, 9, 9, 9}, 0o644); err != nil {
		t.Fatal(err)
	}
	err := Read(path, func(uint32, io.Reader) error { return nil })
	if !errors.Is(err, ErrNotCheckpoint) {
		t.Fatalf("legacy file error = %v, want ErrNotCheckpoint", err)
	}
}

func TestEveryBitFlipIsDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	if err := Write(path, 3, payload([]byte("crc covers all of this"))); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for bit := int64(0); bit < int64(len(clean))*8; bit++ {
		if err := os.WriteFile(path, clean, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := faultfs.FlipBit(path, bit); err != nil {
			t.Fatal(err)
		}
		err := Read(path, func(_ uint32, r io.Reader) error {
			_, err := io.ReadAll(r)
			return err
		})
		if err == nil {
			t.Fatalf("bit flip at %d went undetected", bit)
		}
		// Flips inside the magic look like a legacy file; everything
		// else must be ErrCorrupt.
		if bit >= 32 && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: error %v, want ErrCorrupt", bit, err)
		}
	}
}

func TestEveryTruncationIsDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	if err := Write(path, 3, payload([]byte("truncate me anywhere"))); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := int64(0); n < int64(len(clean)); n++ {
		if err := os.WriteFile(path, clean, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := faultfs.TruncateFile(path, n); err != nil {
			t.Fatal(err)
		}
		err := Read(path, func(_ uint32, r io.Reader) error {
			_, err := io.ReadAll(r)
			return err
		})
		if err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

// TestWriteFaultsLeavePreviousSnapshot is the core atomicity proof:
// whatever fault the file system injects — a short write at any byte
// offset, a failed create, fsync, or rename — a failed Write leaves
// the previous snapshot fully readable.
func TestWriteFaultsLeavePreviousSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	oldBody := []byte("the previous, good snapshot")
	if err := Write(path, 1, payload(oldBody)); err != nil {
		t.Fatal(err)
	}
	newBody := []byte("the replacement that keeps failing to land")
	enc, err := Encode(2, payload(newBody))
	if err != nil {
		t.Fatal(err)
	}
	total := len(enc)

	check := func(when string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: fault not reported", when)
		}
		if got := readBack(t, path, 1); string(got) != string(oldBody) {
			t.Fatalf("%s: previous snapshot damaged: %q", when, got)
		}
	}

	for limit := 0; limit < total; limit++ {
		fsys := faultfs.NewFS()
		fsys.WriteLimit = limit
		check("short write", WriteFS(fsys, path, 2, payload(newBody)))
	}
	for _, tc := range []struct {
		name string
		fsys *faultfs.FS
	}{
		{"create", &faultfs.FS{WriteLimit: -1, FailCreate: true}},
		{"sync", &faultfs.FS{WriteLimit: -1, FailSync: true}},
		{"rename", &faultfs.FS{WriteLimit: -1, FailRename: true}},
	} {
		check(tc.name, WriteFS(tc.fsys, path, 2, payload(newBody)))
	}
	// A failed encoder never touches the disk at all.
	check("encoder", WriteFS(faultfs.NewFS(), path, 2, func(io.Writer) error {
		return errors.New("boom")
	}))

	// After all those faults, a clean write still succeeds and
	// replaces the snapshot.
	if err := WriteFS(faultfs.NewFS(), path, 2, payload(newBody)); err != nil {
		t.Fatal(err)
	}
	if got := readBack(t, path, 2); string(got) != string(newBody) {
		t.Fatalf("clean rewrite lost: %q", got)
	}
}

func TestFailedSyncDirReportsButPublishes(t *testing.T) {
	// The rename happened before the directory sync, so the new
	// snapshot is visible; the error only reports weaker durability.
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	fsys := &faultfs.FS{WriteLimit: -1, FailSyncDir: true}
	err := WriteFS(fsys, path, 4, payload([]byte("published")))
	if err == nil {
		t.Fatal("failed dir sync not reported")
	}
	if got := readBack(t, path, 4); string(got) != "published" {
		t.Fatalf("snapshot not published: %q", got)
	}
}

func FuzzDecode(f *testing.F) {
	good, err := Encode(5, payload([]byte("seed payload")))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-3])
	f.Add([]byte{})
	f.Add([]byte{0x54, 0x47, 0x43, 0x4B})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; a non-nil error must be typed.
		err := Decode(data, func(_ uint32, r io.Reader) error {
			_, err := io.ReadAll(r)
			return err
		})
		if err != nil && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrNotCheckpoint) {
			t.Fatalf("untyped decode error: %v", err)
		}
	})
}
