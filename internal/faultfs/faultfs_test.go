package faultfs

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriterFaultsAtLimit(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, Limit: 5}
	n, err := w.Write([]byte("abc"))
	if n != 3 || err != nil {
		t.Fatalf("under limit: n=%d err=%v", n, err)
	}
	n, err = w.Write([]byte("defg"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write: n=%d err=%v, want short write + ErrInjected", n, err)
	}
	if buf.String() != "abcde" {
		t.Fatalf("buffer = %q, want the 5-byte prefix", buf.String())
	}
	// Every write after the fault keeps failing.
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-fault write error = %v", err)
	}
}

func TestWriterCustomError(t *testing.T) {
	sentinel := errors.New("ENOSPC")
	w := &Writer{W: io.Discard, Limit: 0, Err: sentinel}
	if _, err := w.Write([]byte("x")); !errors.Is(err, sentinel) {
		t.Fatalf("error = %v, want the injected sentinel", err)
	}
}

func TestWriterUnlimited(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, Limit: -1}
	if _, err := w.Write(bytes.Repeat([]byte("y"), 1<<16)); err != nil {
		t.Fatal(err)
	}
	if w.Written() != 1<<16 {
		t.Fatalf("written = %d", w.Written())
	}
}

func TestReaderTruncates(t *testing.T) {
	r := &Reader{R: bytes.NewReader([]byte("0123456789")), Limit: 4, Err: io.ErrUnexpectedEOF}
	got, err := io.ReadAll(r)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("error = %v", err)
	}
	if string(got) != "0123" {
		t.Fatalf("read %q, want the 4-byte prefix", got)
	}
}

func TestFSWriteLimitIsGlobalAcrossWrites(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFS()
	fsys.WriteLimit = 6
	f, err := fsys.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("1234")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("5678")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write error = %v, want ErrInjected", err)
	}
	f.Close()
	data, err := os.ReadFile(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "123456" {
		t.Fatalf("on-disk bytes %q, want the 6-byte prefix", data)
	}
}

func TestFSOperationFaults(t *testing.T) {
	dir := t.TempDir()
	if _, err := (&FS{WriteLimit: -1, FailCreate: true}).Create(filepath.Join(dir, "x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("create error = %v", err)
	}
	fsys := &FS{WriteLimit: -1, FailSync: true}
	f, err := fsys.Create(filepath.Join(dir, "y"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync error = %v", err)
	}
	f.Close()
	if err := (&FS{WriteLimit: -1, FailRename: true}).Rename(filepath.Join(dir, "y"), filepath.Join(dir, "z")); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename error = %v", err)
	}
	if err := (&FS{WriteLimit: -1, FailSyncDir: true}).SyncDir(dir); !errors.Is(err, ErrInjected) {
		t.Fatalf("syncdir error = %v", err)
	}
}

func TestFlipBitAndTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte{0x00, 0xFF}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, 9); err != nil { // bit 1 of byte 1
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if data[0] != 0x00 || data[1] != 0xFD {
		t.Fatalf("bytes after flip = %x", data)
	}
	if err := FlipBit(path, 16); err == nil {
		t.Fatal("out-of-range bit accepted")
	}
	if err := TruncateFile(path, 1); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if len(data) != 1 {
		t.Fatalf("len after truncate = %d", len(data))
	}
}
