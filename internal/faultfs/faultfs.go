// Package faultfs injects storage faults — short writes, ENOSPC-style
// errors, truncation, bit flips, failed fsyncs and renames — so tests
// can prove the crash-safety invariant of the persistence layer: after
// any injected fault, a load either restores a fully consistent
// snapshot or returns a clean error leaving the previous on-disk state
// intact; it never half-applies.
//
// The package has two surfaces: stream wrappers (Writer, Reader) that
// fault at a configurable byte offset, and FS, a checkpoint.FS
// implementation over the real file system with per-operation fault
// points. Corrupt and TruncateFile mutate files already on disk to
// model at-rest corruption.
package faultfs

import (
	"errors"
	"io"
	"os"

	"tgopt/internal/checkpoint"
)

// ErrInjected is the default error returned at an injected fault
// point. It deliberately resembles a device-level failure (ENOSPC, I/O
// error) in that it carries no recovery hint.
var ErrInjected = errors.New("faultfs: injected fault")

// Writer passes bytes through to W until Limit bytes have been
// written, then fails: the write that crosses the limit is a short
// write (the prefix up to the limit reaches W) and returns Err. A
// negative Limit never faults.
type Writer struct {
	W       io.Writer
	Limit   int   // total bytes allowed through (-1 = unlimited)
	Err     error // error at the fault point (nil = ErrInjected)
	written int
}

// Written returns the bytes that actually reached W.
func (w *Writer) Written() int { return w.written }

func (w *Writer) Write(p []byte) (int, error) {
	if w.Limit < 0 || w.written+len(p) <= w.Limit {
		n, err := w.W.Write(p)
		w.written += n
		return n, err
	}
	allowed := w.Limit - w.written
	if allowed < 0 {
		allowed = 0
	}
	n, err := w.W.Write(p[:allowed])
	w.written += n
	if err == nil {
		err = w.errOr()
	}
	return n, err
}

func (w *Writer) errOr() error {
	if w.Err != nil {
		return w.Err
	}
	return ErrInjected
}

// Reader yields at most Limit bytes from R, then returns Err (use
// io.ErrUnexpectedEOF or io.EOF to model truncation). A negative Limit
// never faults.
type Reader struct {
	R     io.Reader
	Limit int
	Err   error
	read  int
}

func (r *Reader) Read(p []byte) (int, error) {
	if r.Limit >= 0 {
		if remaining := r.Limit - r.read; remaining < len(p) {
			p = p[:remaining]
		}
	}
	if len(p) == 0 {
		if r.Err != nil {
			return 0, r.Err
		}
		return 0, ErrInjected
	}
	n, err := r.R.Read(p)
	r.read += n
	return n, err
}

// FS is a checkpoint.FS over the real file system with injectable
// fault points. The zero value (with WriteLimit -1… see NewFS) passes
// everything through; set exactly the faults a test needs.
type FS struct {
	// WriteLimit bounds the total bytes written across all files
	// created through this FS (-1 = unlimited). The crossing write is
	// short and returns WriteErr (default ErrInjected), modeling a
	// full disk or a crash mid-write.
	WriteLimit int
	WriteErr   error
	// FailCreate / FailSync / FailRename / FailSyncDir / FailMkdirAll /
	// FailReadDir / FailStat make the corresponding operation return
	// ErrInjected.
	FailCreate   bool
	FailSync     bool
	FailRename   bool
	FailSyncDir  bool
	FailMkdirAll bool
	FailReadDir  bool
	FailStat     bool

	written int
}

// NewFS returns a pass-through FS (WriteLimit -1, no faults).
func NewFS() *FS { return &FS{WriteLimit: -1} }

type faultFile struct {
	f  *os.File
	fs *FS
}

func (fs *FS) Create(name string) (checkpoint.File, error) {
	if fs.FailCreate {
		return nil, ErrInjected
	}
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, fs: fs}, nil
}

func (ff *faultFile) Write(p []byte) (int, error) {
	fs := ff.fs
	if fs.WriteLimit < 0 || fs.written+len(p) <= fs.WriteLimit {
		n, err := ff.f.Write(p)
		fs.written += n
		return n, err
	}
	allowed := fs.WriteLimit - fs.written
	if allowed < 0 {
		allowed = 0
	}
	n, err := ff.f.Write(p[:allowed])
	fs.written += n
	if err == nil {
		if fs.WriteErr != nil {
			err = fs.WriteErr
		} else {
			err = ErrInjected
		}
	}
	return n, err
}

func (ff *faultFile) Sync() error {
	if ff.fs.FailSync {
		return ErrInjected
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }

func (fs *FS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (fs *FS) Rename(oldpath, newpath string) error {
	if fs.FailRename {
		return ErrInjected
	}
	return os.Rename(oldpath, newpath)
}

func (fs *FS) Remove(name string) error { return os.Remove(name) }

func (fs *FS) SyncDir(dir string) error {
	if fs.FailSyncDir {
		return ErrInjected
	}
	return checkpoint.OS{}.SyncDir(dir)
}

func (fs *FS) MkdirAll(dir string, perm os.FileMode) error {
	if fs.FailMkdirAll {
		return ErrInjected
	}
	return os.MkdirAll(dir, perm)
}

func (fs *FS) ReadDir(dir string) ([]os.DirEntry, error) {
	if fs.FailReadDir {
		return nil, ErrInjected
	}
	return os.ReadDir(dir)
}

func (fs *FS) Stat(name string) (os.FileInfo, error) {
	if fs.FailStat {
		return nil, ErrInjected
	}
	return os.Stat(name)
}

// FlipBit flips one bit of the file at path in place, modeling at-rest
// corruption. bit counts from the start of the file (bit 0 is the LSB
// of byte 0); it must fall inside the file.
func FlipBit(path string, bit int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if bit < 0 || bit >= int64(len(data))*8 {
		return errors.New("faultfs: bit offset outside file")
	}
	data[bit/8] ^= 1 << (bit % 8)
	return os.WriteFile(path, data, 0o644)
}

// TruncateFile cuts the file at path down to n bytes, modeling a torn
// write that a non-atomic writer would have left behind.
func TruncateFile(path string, n int64) error {
	return os.Truncate(path, n)
}
