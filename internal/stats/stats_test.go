package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCollectorAccumulates(t *testing.T) {
	c := NewCollector()
	c.Add(OpAttention, time.Second)
	c.Add(OpAttention, 2*time.Second)
	if c.Duration(OpAttention) != 3*time.Second {
		t.Fatalf("Duration = %v", c.Duration(OpAttention))
	}
	c.Count("embeds", 5)
	c.Count("embeds", 7)
	if c.Counter("embeds") != 12 {
		t.Fatalf("Counter = %v", c.Counter("embeds"))
	}
}

func TestCollectorTimeMeasuresElapsed(t *testing.T) {
	c := NewCollector()
	stop := c.Time("op")
	time.Sleep(5 * time.Millisecond)
	stop()
	if c.Duration("op") < 4*time.Millisecond {
		t.Fatalf("measured %v, want >= ~5ms", c.Duration("op"))
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Time("x")()
	c.Add("x", time.Second)
	c.Count("x", 1)
	c.Reset()
	if c.Duration("x") != 0 || c.Counter("x") != 0 {
		t.Fatal("nil collector returned nonzero")
	}
	if c.String() != "<nil collector>" {
		t.Fatal("nil String() wrong")
	}
	if c.Durations() != nil {
		t.Fatal("nil Durations() should be nil")
	}
}

func TestCollectorResetAndDurations(t *testing.T) {
	c := NewCollector()
	c.Add("a", time.Second)
	m := c.Durations()
	if m["a"] != time.Second {
		t.Fatal("Durations copy wrong")
	}
	m["a"] = 0 // must not affect the collector
	if c.Duration("a") != time.Second {
		t.Fatal("Durations did not copy")
	}
	c.Reset()
	if c.Duration("a") != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestCollectorStringContainsOps(t *testing.T) {
	c := NewCollector()
	c.Add(OpCacheLookup, time.Millisecond)
	c.Count("hits", 3)
	s := c.String()
	if !strings.Contains(s, OpCacheLookup) || !strings.Contains(s, "hits") {
		t.Fatalf("String missing entries: %q", s)
	}
}

func TestCollectorConcurrentUse(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add("op", time.Microsecond)
				c.Count("n", 1)
			}
		}()
	}
	wg.Wait()
	if c.Counter("n") != 5000 {
		t.Fatalf("concurrent Count lost updates: %d", c.Counter("n"))
	}
	if c.Duration("op") != 5000*time.Microsecond {
		t.Fatalf("concurrent Add lost updates: %v", c.Duration("op"))
	}
}

func TestHitRateAverage(t *testing.T) {
	h := NewHitRate(10)
	h.Record(8, 10)
	h.Record(9, 10)
	if math.Abs(h.Average()-0.85) > 1e-9 {
		t.Fatalf("Average = %v", h.Average())
	}
	if h.Batches() != 2 {
		t.Fatalf("Batches = %d", h.Batches())
	}
}

func TestHitRateWindowed(t *testing.T) {
	h := NewHitRate(2)
	h.Record(10, 10) // 1.0
	h.Record(0, 10)  // 0.0
	h.Record(5, 10)  // 0.5
	w := h.Windowed()
	want := []float64{1.0, 0.5, 0.25}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-9 {
			t.Fatalf("Windowed[%d] = %v, want %v", i, w[i], want[i])
		}
	}
}

func TestHitRateZeroLookupBatch(t *testing.T) {
	h := NewHitRate(10)
	h.Record(0, 0)
	if h.Average() != 0 {
		t.Fatal("zero lookups should give 0 average")
	}
	if len(h.Windowed()) != 1 || h.Windowed()[0] != 0 {
		t.Fatal("zero-lookup batch should record a 0 rate")
	}
}

func TestHitRateNilSafe(t *testing.T) {
	var h *HitRate
	h.Record(1, 1)
	if h.Average() != 0 || h.Windowed() != nil || h.Batches() != 0 {
		t.Fatal("nil HitRate misbehaved")
	}
}

func TestHitRateWindowClamp(t *testing.T) {
	h := NewHitRate(0)
	h.Record(1, 2)
	if len(h.Windowed()) != 1 {
		t.Fatal("window<1 not clamped")
	}
}
