// Package stats provides the lightweight operation-level instrumentation
// behind the paper's breakdown analysis (Table 3) and hit-rate plots
// (Figure 7): named wall-clock timers and counters, plus a sliding-window
// hit-rate tracker.
//
// A nil *Collector is valid and free: every method no-ops, so hot paths
// can carry an optional collector without branching at call sites.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Canonical operation names, matching Algorithm 1 of the paper and the
// rows of Table 3.
const (
	OpNghLookup    = "NghLookup"
	OpDedupFilter  = "DedupFilter"
	OpDedupInvert  = "DedupInvert"
	OpTimeEncZero  = "TimeEncode(0)"
	OpTimeEncDelta = "TimeEncode(dt)"
	OpComputeKeys  = "ComputeKeys"
	OpCacheLookup  = "CacheLookup"
	OpCacheStore   = "CacheStore"
	OpAttention    = "attention M"
	OpFeatLookup   = "FeatLookup"
	OpTransfer     = "DeviceTransfer"
)

// Collector accumulates named durations and counters. It is safe for
// concurrent use.
type Collector struct {
	mu     sync.Mutex
	durs   map[string]time.Duration
	counts map[string]int64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		durs:   make(map[string]time.Duration),
		counts: make(map[string]int64),
	}
}

// Time starts a timer for name and returns a stop function that records
// the elapsed duration. Usage: defer c.Time(stats.OpAttention)().
func (c *Collector) Time(name string) func() {
	if c == nil {
		return func() {}
	}
	start := time.Now()
	return func() { c.Add(name, time.Since(start)) }
}

// Add records d against name.
func (c *Collector) Add(name string, d time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.durs[name] += d
	c.mu.Unlock()
}

// Count adds n to the named counter.
func (c *Collector) Count(name string, n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.counts[name] += n
	c.mu.Unlock()
}

// Duration returns the accumulated duration for name.
func (c *Collector) Duration(name string) time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.durs[name]
}

// Counter returns the accumulated counter for name.
func (c *Collector) Counter(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[name]
}

// Reset clears all timers and counters.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.durs = make(map[string]time.Duration)
	c.counts = make(map[string]int64)
}

// Total returns the sum of all accumulated durations — the simulated
// end-to-end runtime when operations were recorded through a device
// model.
func (c *Collector) Total() time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var total time.Duration
	for _, d := range c.durs {
		total += d
	}
	return total
}

// Durations returns a copy of all accumulated durations.
func (c *Collector) Durations() map[string]time.Duration {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]time.Duration, len(c.durs))
	for k, v := range c.durs {
		out[k] = v
	}
	return out
}

// String renders the collector as a sorted, aligned table (seconds).
func (c *Collector) String() string {
	if c == nil {
		return "<nil collector>"
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.durs))
	for k := range c.durs {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%-16s %10.4fs\n", k, c.durs[k].Seconds())
	}
	cnames := make([]string, 0, len(c.counts))
	for k := range c.counts {
		cnames = append(cnames, k)
	}
	sort.Strings(cnames)
	for _, k := range cnames {
		fmt.Fprintf(&b, "%-16s %10d\n", k, c.counts[k])
	}
	return b.String()
}

// HitRate tracks cache hits per batch and reports both the overall
// average hit rate and a sliding-window average over the last W batches,
// reproducing the Figure 7 series.
type HitRate struct {
	mu      sync.Mutex
	window  int
	batches []float64 // per-batch hit rates
	hits    int64
	lookups int64
}

// NewHitRate creates a tracker with the given sliding-window width
// (the paper uses 10 batches).
func NewHitRate(window int) *HitRate {
	if window < 1 {
		window = 1
	}
	return &HitRate{window: window}
}

// Record adds one batch's lookup outcome.
func (h *HitRate) Record(hits, lookups int) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.hits += int64(hits)
	h.lookups += int64(lookups)
	if lookups > 0 {
		h.batches = append(h.batches, float64(hits)/float64(lookups))
	} else {
		h.batches = append(h.batches, 0)
	}
}

// Average returns the overall hit rate across all lookups.
func (h *HitRate) Average() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lookups == 0 {
		return 0
	}
	return float64(h.hits) / float64(h.lookups)
}

// Windowed returns, for each batch index, the hit rate averaged over the
// trailing window of batches ending there.
func (h *HitRate) Windowed() []float64 {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]float64, len(h.batches))
	var sum float64
	for i, v := range h.batches {
		sum += v
		if i >= h.window {
			sum -= h.batches[i-h.window]
		}
		n := i + 1
		if n > h.window {
			n = h.window
		}
		out[i] = sum / float64(n)
	}
	return out
}

// Batches returns the number of batches recorded.
func (h *HitRate) Batches() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.batches)
}
