package stats

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram()
	h.Observe(500 * time.Nanosecond) // bucket 0: < 1µs
	h.Observe(time.Microsecond)      // [1µs, 2µs)
	h.Observe(3 * time.Microsecond)  // [2µs, 4µs)
	h.Observe(10 * time.Second)
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	want := 500*time.Nanosecond + time.Microsecond + 3*time.Microsecond + 10*time.Second
	if h.Sum() != want {
		t.Fatalf("Sum = %v, want %v", h.Sum(), want)
	}
	s := h.Snapshot()
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("low buckets wrong: %v", s.Counts[:4])
	}
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != 4 {
		t.Fatalf("bucket total = %d, want 4", total)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Microsecond) // bucket [8µs, 16µs)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond)
	}
	p50 := h.Quantile(0.5)
	if p50 != 16*time.Microsecond {
		t.Fatalf("p50 = %v, want 16µs bucket bound", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 5*time.Millisecond || p99 > 16*time.Millisecond {
		t.Fatalf("p99 = %v, want within one bucket of 5ms", p99)
	}
	if h.Quantile(0) == 0 {
		t.Fatal("q=0 with observations should report the first bucket bound")
	}
	if got := h.Quantile(1); got < p99 {
		t.Fatalf("q=1 (%v) below p99 (%v)", got, p99)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram()
	for d := time.Microsecond; d < time.Second; d *= 3 {
		h.Observe(d)
	}
	prev := time.Duration(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile %v = %v below previous %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Observe(-time.Second)     // clamped to bucket 0
	h.Observe(1000 * time.Hour) // overflow bucket
	s := h.Snapshot()
	if s.Counts[0] != 1 {
		t.Fatal("negative duration not clamped to first bucket")
	}
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Fatal("huge duration not in overflow bucket")
	}
	if h.Quantile(1) != BucketBound(histBuckets) {
		t.Fatalf("overflow quantile = %v", h.Quantile(1))
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram not zero")
	}
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.Bounds != nil {
		t.Fatal("nil snapshot not empty")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset left observations")
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram()
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	if h.Mean() != 3*time.Millisecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
	s := h.Snapshot()
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != workers*per {
		t.Fatalf("bucket total = %d, want %d", total, workers*per)
	}
}
