package stats

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of finite log-scale buckets. Bucket 0 holds
// durations below 1µs; bucket i (i ≥ 1) holds [2^(i-1)µs, 2^i µs), so
// the largest finite upper bound is 2^(histBuckets-1) µs ≈ 134s. One
// extra overflow bucket catches anything slower.
const histBuckets = 28

// histBase is the lower resolution limit of the histogram.
const histBase = time.Microsecond

// Histogram accumulates durations into fixed log-scale (powers-of-two
// microseconds) buckets. All updates are single atomic adds, so Observe
// is safe and cheap to call from many goroutines with no locking — the
// serving hot path records every engine stage through one of these.
//
// Like Collector, a nil *Histogram is valid and free: every method
// no-ops or returns zero.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets + 1]atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIdx maps a duration to its bucket.
func bucketIdx(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	i := bits.Len64(uint64(d / histBase))
	if i > histBuckets {
		i = histBuckets
	}
	return i
}

// BucketBound returns the exclusive upper bound of bucket i; the last
// bucket is unbounded and reports the largest finite bound.
func BucketBound(i int) time.Duration {
	if i >= histBuckets {
		i = histBuckets - 1
	}
	if i < 0 {
		i = 0
	}
	return histBase << i
}

// NumBuckets returns the total bucket count, including the overflow
// bucket.
func (h *Histogram) NumBuckets() int { return histBuckets + 1 }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	h.buckets[bucketIdx(d)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile returns an upper bound for the q-quantile (q in [0, 1]) of
// the observed durations: the upper bound of the first bucket whose
// cumulative count reaches q·Count. Returns 0 when nothing has been
// observed. The answer is exact to within one power-of-two bucket.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			return BucketBound(i)
		}
	}
	return BucketBound(histBuckets)
}

// Mean returns the average observed duration, or 0 with no observations.
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Reset clears all observations. Concurrent Observes may be partially
// lost; Reset is intended for between-run bookkeeping, not hot paths.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram, suitable for
// rendering (per-bucket counts are non-cumulative; Bounds[i] is the
// exclusive upper bound of Counts[i], with the final bucket unbounded).
type HistogramSnapshot struct {
	Count  int64
	Sum    time.Duration
	Bounds []time.Duration
	Counts []int64
}

// Snapshot copies the histogram's current state. Taken without locking,
// so concurrent Observes may make Count differ from the bucket total by
// a few in-flight observations.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    time.Duration(h.sum.Load()),
		Bounds: make([]time.Duration, histBuckets+1),
		Counts: make([]int64, histBuckets+1),
	}
	for i := range h.buckets {
		s.Bounds[i] = BucketBound(i)
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}
