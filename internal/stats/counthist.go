package stats

import (
	"math/bits"
	"sync/atomic"
)

// countBuckets is the number of finite log-scale count buckets. Bucket 0
// holds the count 0, bucket i (i >= 1) holds [2^(i-1), 2^i), so the
// largest finite upper bound is 2^(countBuckets-1) ≈ 134M. One extra
// overflow bucket catches anything larger.
const countBuckets = 28

// CountHistogram accumulates non-negative integer counts (batch sizes,
// queue depths) into fixed power-of-two buckets. Like Histogram, every
// update is a pair of atomic adds, so Observe is safe and cheap from
// many goroutines, and a nil *CountHistogram is valid and free.
type CountHistogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [countBuckets + 1]atomic.Int64
}

// NewCountHistogram returns an empty count histogram.
func NewCountHistogram() *CountHistogram { return &CountHistogram{} }

// countBucketIdx maps a count to its bucket.
func countBucketIdx(v int64) int {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i > countBuckets {
		i = countBuckets
	}
	return i
}

// CountBucketBound returns the exclusive upper bound of bucket i; the
// last bucket is unbounded and reports the largest finite bound.
func CountBucketBound(i int) int64 {
	if i >= countBuckets {
		i = countBuckets - 1
	}
	if i < 0 {
		i = 0
	}
	return int64(1) << i
}

// Observe records one count.
func (h *CountHistogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[countBucketIdx(v)].Add(1)
}

// Count returns the number of observations.
func (h *CountHistogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed counts.
func (h *CountHistogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observed count, or 0 with no observations.
func (h *CountHistogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile (q in [0, 1]) of
// the observed counts: the upper bound of the first bucket whose
// cumulative count reaches q·Count. Returns 0 when nothing has been
// observed. Exact to within one power-of-two bucket.
func (h *CountHistogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i == 0 {
				return 0 // bucket 0 holds exactly the count 0
			}
			return CountBucketBound(i)
		}
	}
	return CountBucketBound(countBuckets)
}
