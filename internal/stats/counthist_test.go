package stats

import (
	"sync"
	"testing"
)

func TestCountHistogramBasics(t *testing.T) {
	h := NewCountHistogram()
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zero")
	}
	for _, v := range []int64{0, 1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 110 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if got := h.Mean(); got < 18 || got > 19 {
		t.Fatalf("mean = %v", got)
	}
	// Median of {0,1,2,3,4,100}: the third observation (2) lands in
	// bucket [2,4), so the reported upper bound is 4.
	if got := h.Quantile(0.5); got != 4 {
		t.Fatalf("p50 = %d, want 4", got)
	}
	// The max (100) lands in [64,128).
	if got := h.Quantile(1); got != 128 {
		t.Fatalf("p100 = %d, want 128", got)
	}
}

func TestCountHistogramZeroBucket(t *testing.T) {
	h := NewCountHistogram()
	h.Observe(0)
	h.Observe(0)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("all-zero p50 = %d, want 0", got)
	}
}

func TestCountHistogramNilSafe(t *testing.T) {
	var h *CountHistogram
	h.Observe(5)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.9) != 0 {
		t.Fatal("nil histogram must be free")
	}
}

func TestCountHistogramConcurrent(t *testing.T) {
	h := NewCountHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Observe(i % 32)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestCountBucketBoundMonotone(t *testing.T) {
	prev := int64(0)
	for i := 0; i < countBuckets; i++ {
		b := CountBucketBound(i)
		if b <= prev && i > 0 {
			t.Fatalf("bounds not increasing at %d: %d <= %d", i, b, prev)
		}
		prev = b
	}
	if CountBucketBound(countBuckets) != CountBucketBound(countBuckets-1) {
		t.Fatal("overflow bucket must report the largest finite bound")
	}
	if CountBucketBound(-1) != 1 {
		t.Fatalf("negative index bound = %d", CountBucketBound(-1))
	}
}
