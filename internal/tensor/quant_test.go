package tensor

import (
	"math"
	"testing"

	"tgopt/internal/parallel"
)

// quantLinearNaive is the reference for the packed int8 kernel: extract
// each biased byte from the lane words and accumulate the textbook way.
// It shares the quantized inputs and the exact dequantization formula,
// so the optimized kernel must match it bitwise.
func quantLinearNaive(q []uint8, scales []float32, sums []int32, m int, w *QuantMat, bias, dst *Tensor) {
	k, n := w.In, w.Out
	const mask21 = 1<<21 - 1
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			p := j / quantPanelOuts
			t := (j % quantPanelOuts) / 3
			shift := uint(21 * ((j % quantPanelOuts) % 3))
			var u int64
			for kk := 0; kk < k; kk++ {
				uw := (w.lanes[p*k*4+kk*4+t] >> shift) & mask21
				u += int64(q[i*k+kk]) * int64(uw)
			}
			s := int32(u) - 128*sums[i] - 128*w.colSums[j] + int32(16384*k)
			v := scales[i] * w.Scales[j] * float32(s)
			if bias != nil {
				v += bias.data[j]
			}
			dst.data[i*n+j] = v
		}
	}
}

func quantizeActivations(x *Tensor) (q []uint8, scales []float32, sums []int32) {
	m, k := x.Dim(0), x.Dim(1)
	q = make([]uint8, m*k)
	scales = make([]float32, m)
	sums = make([]int32, m)
	QuantizeRowsInto(x, q, scales, sums)
	return q, scales, sums
}

func TestQuantizeVecRoundTrip(t *testing.T) {
	r := NewRNG(31)
	src := Randn(r, 1, 64).Data()
	q := make([]int8, len(src))
	scale := QuantizeVecInto(src, q)
	if scale <= 0 {
		t.Fatalf("scale %g, want > 0", scale)
	}
	dst := make([]float32, len(src))
	DequantizeVecInto(q, scale, dst)
	// Symmetric rounding bounds the per-element error by half a step.
	bound := float64(scale)/2 + 1e-6
	for i := range src {
		if d := math.Abs(float64(src[i] - dst[i])); d > bound {
			t.Errorf("elem %d: round-trip error %g exceeds %g", i, d, bound)
		}
	}
	// The max-magnitude element hits the end of the int8 range exactly.
	var maxQ int8
	for _, v := range q {
		if v > maxQ {
			maxQ = v
		} else if -v > maxQ {
			maxQ = -v
		}
	}
	if maxQ != 127 {
		t.Errorf("max |q| = %d, want 127", maxQ)
	}
}

func TestQuantizeVecZeroRow(t *testing.T) {
	src := make([]float32, 8)
	q := make([]int8, 8)
	if scale := QuantizeVecInto(src, q); scale != 0 {
		t.Fatalf("zero row scale %g, want 0", scale)
	}
	for _, v := range q {
		if v != 0 {
			t.Fatal("zero row quantized to nonzero")
		}
	}
	dst := make([]float32, 8)
	DequantizeVecInto(q, 0, dst)
	for _, v := range dst {
		if v != 0 {
			t.Fatal("zero row did not dequantize to zero")
		}
	}
}

func TestQuantLinearMatchesNaiveInt8(t *testing.T) {
	r := NewRNG(32)
	for _, s := range kernelShapes {
		x := Randn(r, s.m, s.k)
		w := QuantizeMat(Randn(r, s.n, s.k))
		bias := Randn(r, s.n)
		q, scales, sums := quantizeActivations(x)
		want := New(s.m, s.n)
		quantLinearNaive(q, scales, sums, s.m, w, bias, want)
		got := New(s.m, s.n)
		got.Fill(999)
		QuantLinearInto(q, scales, sums, s.m, w, bias, got)
		// Identical integer accumulation and dequant formula → bitwise.
		if d := got.MaxAbsDiff(want); d != 0 {
			t.Errorf("QuantLinearInto %dx%dx%d: max diff %g from int8 naive", s.m, s.k, s.n, d)
		}
	}
}

func TestQuantLinearCloseToFloat(t *testing.T) {
	r := NewRNG(33)
	for _, s := range kernelShapes {
		x := Randn(r, s.m, s.k)
		wf := Randn(r, s.n, s.k)
		bias := Randn(r, s.n)
		want := New(s.m, s.n)
		LinearInto(x, wf, bias, want)
		w := QuantizeMat(wf)
		q, scales, sums := quantizeActivations(x)
		got := New(s.m, s.n)
		QuantLinearInto(q, scales, sums, s.m, w, bias, got)
		// Per-element quantization error is ≤ half a step on each
		// operand; a k-term dot product compounds to roughly
		// k·(sx·|w|max + sw·|x|max)/2. Use that bound with slack.
		var maxX, maxW float32
		for _, v := range x.Data() {
			if v < 0 {
				v = -v
			}
			if v > maxX {
				maxX = v
			}
		}
		for _, v := range wf.Data() {
			if v < 0 {
				v = -v
			}
			if v > maxW {
				maxW = v
			}
		}
		tol := float64(s.k) * float64(maxX*maxW) / 127.0 * 1.5
		if d := float64(got.MaxAbsDiff(want)); d > tol {
			t.Errorf("QuantLinearInto %dx%dx%d: max diff %g from float, tol %g", s.m, s.k, s.n, d, tol)
		}
	}
}

func TestQuantLinearZeroWeightRow(t *testing.T) {
	r := NewRNG(34)
	wf := Randn(r, 4, 8)
	for kk := 0; kk < 8; kk++ {
		wf.Set(0, 1, kk) // zero output row 1
	}
	w := QuantizeMat(wf)
	x := Randn(r, 3, 8)
	bias := Randn(r, 4)
	q, scales, sums := quantizeActivations(x)
	dst := New(3, 4)
	QuantLinearInto(q, scales, sums, 3, w, bias, dst)
	for i := 0; i < 3; i++ {
		if got := dst.At(i, 1); got != bias.At(1) {
			t.Errorf("zero weight row: got %g, want bias %g", got, bias.At(1))
		}
	}
}

func TestQuantLinearParallelMatchesSerial(t *testing.T) {
	r := NewRNG(35)
	x := Randn(r, 512, 40)
	w := QuantizeMat(Randn(r, 24, 40))
	q, scales, sums := quantizeActivations(x)
	par := New(512, 24)
	QuantLinearInto(q, scales, sums, 512, w, nil, par)
	prev := parallel.SetDegree(1)
	ser := New(512, 24)
	QuantLinearInto(q, scales, sums, 512, w, nil, ser)
	parallel.SetDegree(prev)
	if d := par.MaxAbsDiff(ser); d != 0 {
		t.Errorf("parallel vs serial QuantLinearInto: diff %g", d)
	}
}

func TestMatMulAutoMatchesBlocked(t *testing.T) {
	r := NewRNG(36)
	for _, s := range kernelShapes {
		a := Randn(r, s.m, s.k)
		b := Randn(r, s.k, s.n)
		want := New(s.m, s.n)
		MatMulInto(a, b, want)
		got := New(s.m, s.n)
		got.Fill(999)
		MatMulAutoInto(a, b, got, nil)
		if d := got.MaxAbsDiff(want); d != 0 {
			t.Errorf("MatMulAutoInto(nil pack) %dx%dx%d: diff %g", s.m, s.k, s.n, d)
		}
		got.Fill(999)
		MatMulAutoInto(a, b, got, make([]float32, PackedScratchLen(s.k, s.n)))
		if d := got.MaxAbsDiff(want); d != 0 {
			t.Errorf("MatMulAutoInto(pack) %dx%dx%d: diff %g", s.m, s.k, s.n, d)
		}
	}
}

// The int8 kernels share the float kernels' steady-state contract:
// with caller-provided scratch, zero heap allocations.
func TestQuantKernelAllocs(t *testing.T) {
	prev := parallel.SetDegree(1)
	defer parallel.SetDegree(prev)
	r := NewRNG(37)
	x := Randn(r, 128, 96)
	w := QuantizeMat(Randn(r, 64, 96))
	bias := Randn(r, 64)
	q := make([]uint8, 128*96)
	scales := make([]float32, 128)
	sums := make([]int32, 128)
	dst := New(128, 64)
	qv := make([]int8, 96)
	fv := make([]float32, 96)
	for name, fn := range map[string]func(){
		"QuantizeRowsInto": func() { QuantizeRowsInto(x, q, scales, sums) },
		"QuantLinearInto":  func() { QuantLinearInto(q, scales, sums, 128, w, bias, dst) },
		"QuantizeVecInto":  func() { QuantizeVecInto(x.Data()[:96], qv) },
		"DequantizeVec":    func() { DequantizeVecInto(qv, 0.01, fv) },
	} {
		if allocs := testing.AllocsPerRun(10, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

func TestArenaInt8AndByteSlabs(t *testing.T) {
	ar := NewArena()
	a := ar.Int8s(32)
	b := ar.Bytes(64)
	ar.Reset()
	if a2 := ar.Int8s(16); &a2[0] != &a[0] {
		t.Error("arena did not reuse int8 slab after Reset")
	}
	if b2 := ar.Bytes(32); &b2[0] != &b[0] {
		t.Error("arena did not reuse byte slab after Reset")
	}
	var nilAr *Arena
	if len(nilAr.Int8s(3)) != 3 || len(nilAr.Bytes(3)) != 3 {
		t.Fatal("nil arena int8/byte slices failed")
	}
}

// BenchmarkQuantVsFloatLinear measures the int8 packed kernel against
// the float32 kernels at the BENCH_1 attention shape; BENCH_4's kernel
// section is generated from the same pairing via perfbench. Every
// sub-benchmark uses the same float-equivalent byte volume, so MB/s
// compares element throughput directly. Like the float kernel lines,
// the int8 line measures the matmul itself — the per-batch activation
// quantize pass is its own line (and is included in the e2e numbers).
func BenchmarkQuantVsFloatLinear(b *testing.B) {
	r := NewRNG(38)
	const m, k, n = 2048, 96, 64
	x := Randn(r, m, k)
	bmat := Randn(r, k, n)
	wf := Randn(r, n, k)
	bias := Randn(r, n)
	dst := New(m, n)
	bytes := int64(4 * (m*k + k*n + m*n))
	b.Run("float32_blocked", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			MatMulInto(x, bmat, dst)
		}
	})
	b.Run("float32_linear_t", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			LinearInto(x, wf, bias, dst)
		}
	})
	w := QuantizeMat(wf)
	q := make([]uint8, m*k)
	scales := make([]float32, m)
	sums := make([]int32, m)
	QuantizeRowsInto(x, q, scales, sums)
	b.Run("int8_packed", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			QuantLinearInto(q, scales, sums, m, w, bias, dst)
		}
	})
	b.Run("int8_quantize_rows", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			QuantizeRowsInto(x, q, scales, sums)
		}
	})
}
