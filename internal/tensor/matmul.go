package tensor

import (
	"fmt"

	"tgopt/internal/parallel"
)

// MatMul computes C = A·B for rank-2 tensors A (m,k) and B (k,n).
func MatMul(a, b *Tensor) *Tensor {
	m := a.shape[0]
	if b.Rank() != 2 || a.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 operands")
	}
	out := New(m, b.shape[1])
	MatMulInto(a, b, out)
	return out
}

// MatMulInto computes dst = A·B, with dst preallocated to shape (m, n);
// dst's prior contents are overwritten. The kernel processes four A
// rows at a time in i-k-j order, so each streamed B row is reused for
// four output rows while it sits in registers/L1 — the register
// blocking that makes the dense path memory-bandwidth-, not
// latency-bound. The inner loop is branch-free; use MatMulSparseInto
// when A is known to be mostly zero. The row loop parallelizes above
// ParallelThresholds.MatMulRows.
func MatMulInto(a, b, dst *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulInto inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	ad, bd, cd := a.data, b.data, dst.data
	// The closure is built only on the fan-out branch: creating it
	// unconditionally would heap-allocate it on the serial path too
	// (it escapes through ForChunked), breaking the zero-alloc contract.
	if m >= ParallelThresholds.MatMulRows && parallel.Degree() > 1 {
		parallel.ForChunked(m, 0, func(lo, hi int) { matmulRows(ad, bd, cd, lo, hi, k, n) })
	} else {
		matmulRows(ad, bd, cd, 0, m, k, n)
	}
}

// matmulRows computes rows [lo,hi) of c = a·b with 4-row register
// blocking and a branch-free inner loop. Rows are fully overwritten.
func matmulRows(a, b, c []float32, lo, hi, k, n int) {
	i := lo
	for ; i+4 <= hi; i += 4 {
		r0 := c[(i+0)*n : (i+0)*n+n]
		r1 := c[(i+1)*n : (i+1)*n+n]
		r2 := c[(i+2)*n : (i+2)*n+n]
		r3 := c[(i+3)*n : (i+3)*n+n]
		clear(r0)
		clear(r1)
		clear(r2)
		clear(r3)
		a0 := a[(i+0)*k : (i+0)*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k]
		a2 := a[(i+2)*k : (i+2)*k+k]
		a3 := a[(i+3)*k : (i+3)*k+k]
		for kk := 0; kk < k; kk++ {
			brow := b[kk*n : kk*n+n]
			av0, av1, av2, av3 := a0[kk], a1[kk], a2[kk], a3[kk]
			for j, bv := range brow {
				r0[j] += av0 * bv
				r1[j] += av1 * bv
				r2[j] += av2 * bv
				r3[j] += av3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		crow := c[i*n : i*n+n]
		clear(crow)
		arow := a[i*k : i*k+k]
		for kk, av := range arow {
			brow := b[kk*n : kk*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulAutoInto computes dst = A·B choosing the dense kernel by
// measured throughput. pack may be nil or a PackedScratchLen(k, n)
// scratch slice; it is accepted so callers holding packed scratch can
// switch kernels without an API change, but the current heuristic never
// uses it.
//
// Benchmark guard: BENCH_1.json (m=2048, k=96, n=64, the attention
// shape) measured kernel/matmul_blocked at 216.6 MB/s and
// kernel/matmul_packed at 195.5 MB/s — the packed kernel's O(k·n)
// repack pass and panel-boundary stores cost more than its extra
// register blocking buys at every shape the TGAT layers produce, so
// the blocked kernel is the dense default for all sizes. If a future
// BENCH_<n>.json shows the packed kernel winning on some shape, encode
// that shape test here rather than at call sites.
func MatMulAutoInto(a, b, dst *Tensor, pack []float32) {
	_ = pack
	MatMulInto(a, b, dst)
}

// PackedScratchLen returns the scratch length MatMulPackedInto needs
// for a B operand of shape (k, n).
func PackedScratchLen(k, n int) int { return k * ((n + 3) &^ 3) }

// MatMulPackedInto computes dst = A·B like MatMulInto, but first packs
// B into column panels of width 4 (zero-padded at the tail) so the 4×4
// micro-kernel reads both operands with unit stride and keeps sixteen
// accumulators in registers. pack must have at least
// PackedScratchLen(k, n) elements — pass an arena slice to keep the
// call allocation-free. The packing cost is O(k·n), amortized over m
// rows. Despite the extra register blocking, BENCH_1.json measured this
// kernel ~10% slower than MatMulInto at the tall-skinny attention shape
// (195.5 vs 216.6 MB/s) — the repack pass plus panel-boundary stores
// outweigh the blocking — so the dense default (MatMulAutoInto) does
// not select it. It is kept for shapes a future benchmark may surface.
func MatMulPackedInto(a, b, dst *Tensor, pack []float32) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulPackedInto inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulPackedInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	need := PackedScratchLen(k, n)
	if len(pack) < need {
		panic(fmt.Sprintf("tensor: MatMulPackedInto pack scratch %d, need %d", len(pack), need))
	}
	pack = pack[:need]
	packB(b.data, k, n, pack)
	ad, cd := a.data, dst.data
	pk := pack
	if m >= ParallelThresholds.MatMulRows && parallel.Degree() > 1 {
		parallel.ForChunked(m, 0, func(lo, hi int) { matmulPackedRows(ad, pk, cd, lo, hi, k, n) })
	} else {
		matmulPackedRows(ad, pk, cd, 0, m, k, n)
	}
}

// packB rearranges B (k, n) into ceil(n/4) contiguous panels of shape
// (k, 4); panel p holds columns 4p..4p+3, zero-padded past n.
func packB(b []float32, k, n int, pack []float32) {
	np := (n + 3) &^ 3
	for p := 0; p < np/4; p++ {
		base := p * k * 4
		j0 := p * 4
		w := n - j0
		if w > 4 {
			w = 4
		}
		for kk := 0; kk < k; kk++ {
			src := b[kk*n+j0 : kk*n+j0+w]
			d := pack[base+kk*4 : base+kk*4+4]
			d[0], d[1], d[2], d[3] = 0, 0, 0, 0
			copy(d, src)
		}
	}
}

// matmulPackedRows runs the 4×4 micro-kernel over rows [lo,hi).
func matmulPackedRows(a, pack, c []float32, lo, hi, k, n int) {
	np := (n + 3) &^ 3
	i := lo
	for ; i+4 <= hi; i += 4 {
		a0 := a[(i+0)*k : (i+0)*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k]
		a2 := a[(i+2)*k : (i+2)*k+k]
		a3 := a[(i+3)*k : (i+3)*k+k]
		for p := 0; p < np/4; p++ {
			pb := pack[p*k*4 : (p+1)*k*4]
			var c00, c01, c02, c03 float32
			var c10, c11, c12, c13 float32
			var c20, c21, c22, c23 float32
			var c30, c31, c32, c33 float32
			for kk := 0; kk < k; kk++ {
				o := kk * 4
				b0, b1, b2, b3 := pb[o], pb[o+1], pb[o+2], pb[o+3]
				av := a0[kk]
				c00 += av * b0
				c01 += av * b1
				c02 += av * b2
				c03 += av * b3
				av = a1[kk]
				c10 += av * b0
				c11 += av * b1
				c12 += av * b2
				c13 += av * b3
				av = a2[kk]
				c20 += av * b0
				c21 += av * b1
				c22 += av * b2
				c23 += av * b3
				av = a3[kk]
				c30 += av * b0
				c31 += av * b1
				c32 += av * b2
				c33 += av * b3
			}
			j0 := p * 4
			storePanelRow(c[(i+0)*n:(i+0)*n+n], j0, c00, c01, c02, c03)
			storePanelRow(c[(i+1)*n:(i+1)*n+n], j0, c10, c11, c12, c13)
			storePanelRow(c[(i+2)*n:(i+2)*n+n], j0, c20, c21, c22, c23)
			storePanelRow(c[(i+3)*n:(i+3)*n+n], j0, c30, c31, c32, c33)
		}
	}
	if i < hi {
		// Remainder rows (at most 3): the plain blocked kernel needs the
		// original row-major B, which the packed panels can reproduce
		// column-by-column; reuse the scalar path instead.
		for ; i < hi; i++ {
			arow := a[i*k : i*k+k]
			crow := c[i*n : i*n+n]
			for p := 0; p < np/4; p++ {
				pb := pack[p*k*4 : (p+1)*k*4]
				var c0, c1, c2, c3 float32
				for kk := 0; kk < k; kk++ {
					o := kk * 4
					av := arow[kk]
					c0 += av * pb[o]
					c1 += av * pb[o+1]
					c2 += av * pb[o+2]
					c3 += av * pb[o+3]
				}
				storePanelRow(crow, p*4, c0, c1, c2, c3)
			}
		}
	}
}

// storePanelRow writes up to four accumulated panel values into row at
// column j0, discarding the zero-padded tail.
func storePanelRow(row []float32, j0 int, v0, v1, v2, v3 float32) {
	switch len(row) - j0 {
	case 1:
		row[j0] = v0
	case 2:
		row[j0], row[j0+1] = v0, v1
	case 3:
		row[j0], row[j0+1], row[j0+2] = v0, v1, v2
	default:
		row[j0], row[j0+1], row[j0+2], row[j0+3] = v0, v1, v2, v3
	}
}

// MatMulSparseInto computes dst = A·B skipping zero A entries — the
// kernel the dense path used before register blocking. It only pays off
// when A is genuinely sparse (≳80% zeros, e.g. the masked attention
// weights of mostly-padded neighborhoods; see BenchmarkMatMulKernels/
// sparse). Skipping a zero entry drops the 0·b term, so results are
// bitwise-identical to the dense kernel only for finite B; with ±Inf or
// NaN in B the dense kernel would produce NaN where this one produces
// 0. All operands on the inference path are finite (the engine's
// HasNaN guard), so the substitution is legal there.
func MatMulSparseInto(a, b, dst *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulSparseInto inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulSparseInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	ad, bd, cd := a.data, b.data, dst.data
	if m >= ParallelThresholds.MatMulRows && parallel.Degree() > 1 {
		parallel.ForChunked(m, 0, func(lo, hi int) { matmulSparseRows(ad, bd, cd, lo, hi, k, n) })
	} else {
		matmulSparseRows(ad, bd, cd, 0, m, k, n)
	}
}

// matmulSparseRows computes rows [lo,hi) of c = a·b, skipping zero a
// entries.
func matmulSparseRows(a, b, c []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		clear(crow)
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[kk*n : kk*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulT computes C = A·Bᵀ for A (m,k) and B (n,k), i.e. every output
// element is a dot product of an A row with a B row. This avoids
// materializing the transpose and is the kernel the attention layer uses
// for query–key scores.
func MatMulT(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulT requires rank-2 operands")
	}
	out := New(a.shape[0], b.shape[0])
	MatMulTInto(a, b, out)
	return out
}

// MatMulTInto computes dst = A·Bᵀ with dst preallocated to (m, n). The
// kernel computes four output columns at a time — four B rows stream
// against one cached A row with independent accumulators — which is the
// hot shape of every nn.Linear projection (x·Wᵀ).
func MatMulTInto(a, b, dst *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulTInto requires rank-2 operands")
	}
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulTInto inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	ad, bd, cd := a.data, b.data, dst.data
	if m >= ParallelThresholds.MatMulRows && parallel.Degree() > 1 {
		parallel.ForChunked(m, 0, func(lo, hi int) { matmulTRows(ad, bd, cd, lo, hi, k, n) })
	} else {
		matmulTRows(ad, bd, cd, 0, m, k, n)
	}
}

// matmulTRows computes rows [lo,hi) of c = a·bᵀ, four output columns
// (B rows) at a time against one cached A row.
func matmulTRows(a, b, c []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[(j+0)*k : (j+0)*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k]
			b2 := b[(j+2)*k : (j+2)*k+k]
			b3 := b[(j+3)*k : (j+3)*k+k]
			var s0, s1, s2, s3 float32
			for kk, av := range arow {
				s0 += av * b0[kk]
				s1 += av * b1[kk]
				s2 += av * b2[kk]
				s3 += av * b3[kk]
			}
			crow[j], crow[j+1], crow[j+2], crow[j+3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			crow[j] = dot32(arow, b[j*k:j*k+k])
		}
	}
}

// MatVec computes y = A·x for A (m,k) and x of length k, returning shape
// [m].
func MatVec(a, x *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: MatVec requires rank-2 matrix")
	}
	m, k := a.shape[0], a.shape[1]
	if x.Len() != k {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v x len %d", a.shape, x.Len()))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		out.data[i] = dot32(a.data[i*k:(i+1)*k], x.data)
	}
	return out
}

// BatchedMatMul computes C[b] = A[b]·B[b] for rank-3 tensors
// A (B,m,k) and B (B,k,n), producing (B,m,n).
func BatchedMatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 3 || b.Rank() != 3 {
		panic("tensor: BatchedMatMul requires rank-3 operands")
	}
	out := New(a.shape[0], a.shape[1], b.shape[2])
	BatchedMatMulInto(a, b, out)
	return out
}

// BatchedMatMulInto computes C[b] = A[b]·B[b] into dst (B,m,n),
// overwriting it. Batches are independent; the batch loop parallelizes
// above ParallelThresholds.BatchedMatMulBatches with a serial blocked
// kernel per batch.
func BatchedMatMulInto(a, b, dst *Tensor) {
	bs, m, k, n := batchedCheck("BatchedMatMulInto", a, b, dst)
	ad, bd, cd := a.data, b.data, dst.data
	if bs >= ParallelThresholds.BatchedMatMulBatches && parallel.Degree() > 1 {
		parallel.ForChunked(bs, 0, func(lo, hi int) { batchedRange(ad, bd, cd, lo, hi, m, k, n) })
	} else {
		batchedRange(ad, bd, cd, 0, bs, m, k, n)
	}
}

// batchedRange runs the dense blocked kernel for batches [lo,hi).
func batchedRange(a, b, c []float32, lo, hi, m, k, n int) {
	for bi := lo; bi < hi; bi++ {
		matmulRows(a[bi*m*k:(bi+1)*m*k], b[bi*k*n:(bi+1)*k*n], c[bi*m*n:(bi+1)*m*n], 0, m, k, n)
	}
}

// BatchedMatMulSparseInto is BatchedMatMulInto skipping zero A entries.
// The batched attention kernel uses it for the α·V product, where the
// masked softmax zeroes every padded neighbor slot — A is genuinely
// sparse there. Legality caveats as MatMulSparseInto.
func BatchedMatMulSparseInto(a, b, dst *Tensor) {
	bs, m, k, n := batchedCheck("BatchedMatMulSparseInto", a, b, dst)
	ad, bd, cd := a.data, b.data, dst.data
	if bs >= ParallelThresholds.BatchedMatMulBatches && parallel.Degree() > 1 {
		parallel.ForChunked(bs, 0, func(lo, hi int) { batchedSparseRange(ad, bd, cd, lo, hi, m, k, n) })
	} else {
		batchedSparseRange(ad, bd, cd, 0, bs, m, k, n)
	}
}

// batchedSparseRange runs the zero-skipping kernel for batches [lo,hi).
func batchedSparseRange(a, b, c []float32, lo, hi, m, k, n int) {
	for bi := lo; bi < hi; bi++ {
		matmulSparseRows(a[bi*m*k:(bi+1)*m*k], b[bi*k*n:(bi+1)*k*n], c[bi*m*n:(bi+1)*m*n], 0, m, k, n)
	}
}

func batchedCheck(op string, a, b, dst *Tensor) (bs, m, k, n int) {
	if a.Rank() != 3 || b.Rank() != 3 {
		panic("tensor: " + op + " requires rank-3 operands")
	}
	bs, m, k = a.shape[0], a.shape[1], a.shape[2]
	if b.shape[0] != bs || b.shape[1] != k {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v x %v", op, a.shape, b.shape))
	}
	n = b.shape[2]
	if dst.Rank() != 3 || dst.shape[0] != bs || dst.shape[1] != m || dst.shape[2] != n {
		panic(fmt.Sprintf("tensor: %s dst shape %v, want [%d %d %d]", op, dst.shape, bs, m, n))
	}
	return bs, m, k, n
}

// Linear computes x·Wᵀ + bias for x (n, in), W (out, in) and bias [out]
// (bias may be nil). This matches the PyTorch nn.Linear weight layout so
// trained parameters round-trip naturally.
func Linear(x, w, bias *Tensor) *Tensor {
	out := MatMulT(x, w)
	if bias != nil {
		AddRowBiasInPlace(out, bias)
	}
	return out
}

// LinearInto is Linear writing into dst (n, out), overwriting it.
func LinearInto(x, w, bias, dst *Tensor) {
	MatMulTInto(x, w, dst)
	if bias != nil {
		AddRowBiasInPlace(dst, bias)
	}
}
