package tensor

import (
	"fmt"

	"tgopt/internal/parallel"
)

// matmulParallelThreshold is the number of output rows above which MatMul
// fans out across the parallel runtime. Small inference batches stay
// serial to avoid fork-join overhead.
const matmulParallelThreshold = 64

// MatMul computes C = A·B for rank-2 tensors A (m,k) and B (k,n).
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	if b.Rank() != 2 || a.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 operands")
	}
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, b.shape[1])
	MatMulInto(a, b, out)
	return out
}

// MatMulInto computes dst = A·B, with dst preallocated to shape (m, n).
// The i-loop is parallelized for large m; the kernel iterates k in the
// middle loop so the B row is streamed sequentially (i-k-j order), which
// is the cache-friendly layout for row-major operands.
func MatMulInto(a, b, dst *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulInto inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*k : (i+1)*k]
			crow := dst.data[i*n : (i+1)*n]
			for j := range crow {
				crow[j] = 0
			}
			for kk, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.data[kk*n : (kk+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
	if m >= matmulParallelThreshold {
		parallel.ForChunked(m, 0, body)
	} else {
		body(0, m)
	}
}

// MatMulT computes C = A·Bᵀ for A (m,k) and B (n,k), i.e. every output
// element is a dot product of an A row with a B row. This avoids
// materializing the transpose and is the kernel the attention layer uses
// for query–key scores.
func MatMulT(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulT requires rank-2 operands")
	}
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulT inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*k : (i+1)*k]
			crow := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				crow[j] = dot32(arow, b.data[j*k:(j+1)*k])
			}
		}
	}
	if m >= matmulParallelThreshold {
		parallel.ForChunked(m, 0, body)
	} else {
		body(0, m)
	}
	return out
}

// MatVec computes y = A·x for A (m,k) and x of length k, returning shape
// [m].
func MatVec(a, x *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: MatVec requires rank-2 matrix")
	}
	m, k := a.shape[0], a.shape[1]
	if x.Len() != k {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v x len %d", a.shape, x.Len()))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		out.data[i] = dot32(a.data[i*k:(i+1)*k], x.data)
	}
	return out
}

// BatchedMatMul computes C[b] = A[b]·B[b] for rank-3 tensors
// A (B,m,k) and B (B,k,n), producing (B,m,n). Batches are independent
// and are parallelized across the pool.
func BatchedMatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 3 || b.Rank() != 3 {
		panic("tensor: BatchedMatMul requires rank-3 operands")
	}
	bs, m, k := a.shape[0], a.shape[1], a.shape[2]
	if b.shape[0] != bs || b.shape[1] != k {
		panic(fmt.Sprintf("tensor: BatchedMatMul shape mismatch %v x %v", a.shape, b.shape))
	}
	n := b.shape[2]
	out := New(bs, m, n)
	batch := func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			av := &Tensor{shape: []int{m, k}, data: a.data[bi*m*k : (bi+1)*m*k]}
			bv := &Tensor{shape: []int{k, n}, data: b.data[bi*k*n : (bi+1)*k*n]}
			cv := &Tensor{shape: []int{m, n}, data: out.data[bi*m*n : (bi+1)*m*n]}
			// Serial kernel per batch; parallelism is across batches.
			for i := 0; i < m; i++ {
				arow := av.data[i*k : (i+1)*k]
				crow := cv.data[i*n : (i+1)*n]
				for kk, avv := range arow {
					if avv == 0 {
						continue
					}
					brow := bv.data[kk*n : (kk+1)*n]
					for j, bvv := range brow {
						crow[j] += avv * bvv
					}
				}
			}
		}
	}
	if bs >= 8 {
		parallel.ForChunked(bs, 0, batch)
	} else {
		batch(0, bs)
	}
	return out
}

// Linear computes x·Wᵀ + bias for x (n, in), W (out, in) and bias [out]
// (bias may be nil). This matches the PyTorch nn.Linear weight layout so
// trained parameters round-trip naturally.
func Linear(x, w, bias *Tensor) *Tensor {
	out := MatMulT(x, w)
	if bias != nil {
		AddRowBiasInPlace(out, bias)
	}
	return out
}
