package tensor

import (
	"math"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64 core) used everywhere randomness is needed: weight
// initialization, synthetic dataset generation, and negative sampling.
// Using our own generator keeps every experiment byte-reproducible across
// Go releases (math/rand's stream is not guaranteed stable).
type RNG struct {
	state uint64
	// spare Gaussian from the Box-Muller pair
	hasSpare bool
	spare    float64
}

// NewRNG creates a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// State returns the generator's SplitMix64 state for checkpointing.
// The buffered Box-Muller spare is not captured: a restore resumes the
// uniform stream exactly and the Gaussian stream at the next pair.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a state captured by State and drops any buffered
// Gaussian spare.
func (r *RNG) SetState(s uint64) {
	r.state = s
	r.hasSpare = false
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// NormFloat64 returns a standard normal variate via Box-Muller.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Pareto returns a Pareto (power-law) variate with minimum xm and shape
// alpha. The synthetic dataset generators use this to reproduce the
// heavy-tailed inter-event time distribution the paper observes (Fig. 4).
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Rand fills a new tensor of the given shape with uniform values in
// [0, 1).
func Rand(r *RNG, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = r.Float32()
	}
	return t
}

// Randn fills a new tensor of the given shape with standard normal
// values.
func Randn(r *RNG, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(r.NormFloat64())
	}
	return t
}

// XavierUniform initializes a weight tensor with the Glorot/Xavier
// uniform scheme: U(-a, a) with a = sqrt(6/(fanIn+fanOut)). For a rank-2
// tensor shaped (out, in) — the nn.Linear layout — fanIn is Dim(1) and
// fanOut is Dim(0); for rank 1 both fans are the length.
func XavierUniform(r *RNG, t *Tensor) {
	fanIn, fanOut := t.Len(), t.Len()
	if t.Rank() >= 2 {
		fanIn = t.Dim(-1)
		fanOut = t.Len() / fanIn
	}
	a := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range t.data {
		t.data[i] = float32((2*r.Float64() - 1) * a)
	}
}
