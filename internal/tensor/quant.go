package tensor

import (
	"fmt"
	"math"

	"tgopt/internal/parallel"
)

// Int8 symmetric quantization. A float32 row x is stored as
// q[i] = clamp(round(x[i]/s), -127, 127) with one scale s = maxabs/127
// per row, so dequantization is the single multiply s·q[i] and the
// representable error is bounded by s/2 per element.
//
// The matmul kernel below does not multiply int8 values one at a time —
// scalar imul throughput would only match the float kernel, not beat
// it. Instead each weight byte is stored biased (u = q+128 ∈ [1,255])
// and THREE of them are packed into 21-bit lanes of one uint64. A
// single 64-bit multiply by a broadcast activation byte then performs
// three MACs at once: lane products are ≤ 255·255 = 65025 < 2¹⁷, so a
// lane can absorb 32 products (32·65025 = 2 080 800 < 2²¹) before the
// kernel drains the lanes into int32 accumulators — one drain per
// 32-step chunk, amortized to noise. The bias is removed after
// accumulation with precomputed row/column byte sums (the standard
// zero-point correction):
//
//	Σ qx·qw = Σ ux·uw − 128·Σux − 128·Σuw + 16384·k
//
// The drained int32 sums are exact for k ≤ 2³¹/65025 ≈ 33 000;
// quantMaxK guards that bound. At the BENCH_1 attention shape this
// kernel measures ≥2× the float32 blocked kernel's MB/s (see
// BenchmarkQuantVsFloatLinear and BENCH_4.json): the 64-bit multiplier
// retires one 3-MAC word per cycle where the float pipeline peaks at
// ~1.3 MAC/cycle, and two activation rows share each streamed weight
// word.
const quantMaxK = 1 << 15

// quantPanelOuts is the kernel's register block: four lane words of
// three outputs each per panel.
const quantPanelOuts = 12

// quantChunk is the number of k-steps a 21-bit lane can accumulate
// before it must be drained (32·255·255 < 2²¹).
const quantChunk = 32

// QuantMat is an int8-quantized, lane-packed weight matrix consumed by
// QuantLinearInto. Logical shape is (Out, In), matching nn.Linear's W,
// and quantization is symmetric per output row. Build one with
// QuantizeMat once at model load/swap — never per request.
type QuantMat struct {
	Out, In int
	// Scales holds the per-output-row dequantization scales.
	Scales []float32
	// lanes is the biased weight bytes packed panel-major:
	// lanes[p·In·4 + kk·4 + t] holds outputs 12p+3t .. 12p+3t+2 at
	// input kk in its three 21-bit lanes. Missing outputs in the last
	// panel are zero lanes, which contribute nothing.
	lanes []uint64
	// colSums[j] is Σ_kk biased-byte(W[j][kk]), the per-output term of
	// the zero-point correction.
	colSums []int32
	nPanels int
}

// QuantizeMat quantizes a float32 weight matrix w (out, in) into the
// packed representation. Rows of all zeros get scale 0 and quantize to
// the zero point exactly, so they dequantize back to zero.
func QuantizeMat(w *Tensor) *QuantMat {
	if w.Rank() != 2 {
		panic("tensor: QuantizeMat requires a rank-2 weight matrix")
	}
	out, in := w.shape[0], w.shape[1]
	if in > quantMaxK {
		panic(fmt.Sprintf("tensor: QuantizeMat inner dimension %d exceeds %d", in, quantMaxK))
	}
	nPanels := (out + quantPanelOuts - 1) / quantPanelOuts
	m := &QuantMat{
		Out:     out,
		In:      in,
		Scales:  make([]float32, out),
		lanes:   make([]uint64, nPanels*in*4),
		colSums: make([]int32, out),
		nPanels: nPanels,
	}
	wd := w.data
	for j := 0; j < out; j++ {
		row := wd[j*in : j*in+in]
		inv, scale := rowQuantScale(row)
		m.Scales[j] = scale
		p := j / quantPanelOuts
		t := (j % quantPanelOuts) / 3
		shift := uint(21 * ((j % quantPanelOuts) % 3))
		var sum int32
		for kk, v := range row {
			u := uint64(biasByte(v, inv))
			sum += int32(u)
			m.lanes[p*in*4+kk*4+t] |= u << shift
		}
		m.colSums[j] = sum
	}
	return m
}

// Bytes reports the packed matrix's memory footprint.
func (m *QuantMat) Bytes() int {
	return len(m.lanes)*8 + len(m.Scales)*4 + len(m.colSums)*4
}

// rowQuantScale returns the quantization multiplier (127/maxabs) and
// the dequantization scale (maxabs/127) for one row. A zero row yields
// (0, 0) so every element quantizes to zero.
func rowQuantScale(row []float32) (inv, scale float32) {
	var maxBits uint32
	for _, v := range row {
		bits := math.Float32bits(v) &^ (1 << 31)
		if bits > maxBits {
			maxBits = bits
		}
	}
	maxAbs := math.Float32frombits(maxBits)
	if maxAbs == 0 {
		return 0, 0
	}
	return 127 / maxAbs, maxAbs / 127
}

// quantByte quantizes one value to a signed int8 given the row
// multiplier, rounding half away from zero.
func quantByte(v, inv float32) int8 {
	f := v * inv
	if f >= 0 {
		f += 0.5
	} else {
		f -= 0.5
	}
	q := int32(f)
	if q > 127 {
		q = 127
	} else if q < -127 {
		q = -127
	}
	return int8(q)
}

// biasByte is quantByte shifted into the kernel's unsigned domain.
func biasByte(v, inv float32) uint8 { return uint8(int32(quantByte(v, inv)) + 128) }

// QuantizeRowsInto quantizes each row of x (m, k) into biased bytes for
// QuantLinearInto. q must have m·k elements, scales and sums m each —
// pass arena slices to keep the call allocation-free. sums receives the
// per-row biased-byte totals the kernel needs for its zero-point
// correction. The rounding is branchless (sign-copied ±0.5 then
// truncate): a branchy round mispredicts on random-sign activations
// and measured ~6× slower.
func QuantizeRowsInto(x *Tensor, q []uint8, scales []float32, sums []int32) {
	if x.Rank() != 2 {
		panic("tensor: QuantizeRowsInto requires a rank-2 input")
	}
	m, k := x.shape[0], x.shape[1]
	if k > quantMaxK {
		panic(fmt.Sprintf("tensor: QuantizeRowsInto inner dimension %d exceeds %d", k, quantMaxK))
	}
	if len(q) < m*k || len(scales) < m || len(sums) < m {
		panic("tensor: QuantizeRowsInto scratch too small")
	}
	xd := x.data
	for i := 0; i < m; i++ {
		row := xd[i*k : i*k+k]
		inv, scale := rowQuantScale(row)
		scales[i] = scale
		qrow := q[i*k : i*k+k]
		var sum int32
		for kk, v := range row {
			f := v * inv
			// Round half away from zero without a branch: add ±0.5 with
			// f's sign, then truncate. |f| ≤ 127 by construction (inv =
			// 127/maxabs), so no clamp is needed on finite inputs.
			f += math.Float32frombits(math.Float32bits(f)&(1<<31) | 0x3F000000)
			u := uint8(int32(f) + 128)
			sum += int32(u)
			qrow[kk] = u
		}
		sums[i] = sum
	}
}

// QuantLinearInto computes dst = dequant(x·Wᵀ) + bias for pre-quantized
// activations (q, scales, sums from QuantizeRowsInto; m rows) against a
// packed weight matrix. bias may be nil. dst must be (m, w.Out) and is
// fully overwritten. The row loop parallelizes above
// ParallelThresholds.MatMulRows; all scratch is caller-provided, so the
// call performs zero steady-state allocations.
func QuantLinearInto(q []uint8, scales []float32, sums []int32, m int, w *QuantMat, bias, dst *Tensor) {
	k, n := w.In, w.Out
	if len(q) < m*k || len(scales) < m || len(sums) < m {
		panic("tensor: QuantLinearInto activation scratch too small")
	}
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: QuantLinearInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	var bd []float32
	if bias != nil {
		if bias.Len() != n {
			panic(fmt.Sprintf("tensor: QuantLinearInto bias length %d, want %d", bias.Len(), n))
		}
		bd = bias.data
	}
	cd := dst.data
	// Closure built only on the fan-out branch; see MatMulInto.
	if m >= ParallelThresholds.MatMulRows && parallel.Degree() > 1 {
		parallel.ForChunked(m, 0, func(lo, hi int) {
			quantLinearRows(q, scales, sums, w, bd, cd, lo, hi)
		})
	} else {
		quantLinearRows(q, scales, sums, w, bd, cd, 0, m)
	}
}

// quantLinearRows computes output rows [lo,hi): pairs of activation
// rows share each streamed weight word, with a single-row tail.
func quantLinearRows(q []uint8, scales []float32, sums []int32, w *QuantMat, bias, c []float32, lo, hi int) {
	i := lo
	for ; i+2 <= hi; i += 2 {
		quantLinearRowPair(q, scales, sums, w, bias, c, i)
	}
	if i < hi {
		quantLinearRowOne(q, scales, sums, w, bias, c, i)
	}
}

// quantLinearRowPair computes output rows i and i+1. Full 32-step
// chunks run over fixed-size array views so the compiler drops every
// bounds check from the 8-MAC-per-step inner loop.
func quantLinearRowPair(q []uint8, scales []float32, sums []int32, w *QuantMat, bias, c []float32, i int) {
	k, n := w.In, w.Out
	lanes := w.lanes
	corrK := int32(16384 * k)
	urow0 := q[i*k : i*k+k]
	urow1 := q[(i+1)*k : (i+1)*k+k]
	crow0 := c[i*n : i*n+n]
	crow1 := c[(i+1)*n : (i+1)*n+n]
	rc0 := corrK - 128*sums[i]
	rc1 := corrK - 128*sums[i+1]
	sx0, sx1 := scales[i], scales[i+1]
	for p := 0; p < w.nPanels; p++ {
		pb := lanes[p*k*4 : (p+1)*k*4]
		var s0, s1 [quantPanelOuts]int32
		base := 0
		for ; base+quantChunk <= k; base += quantChunk {
			pa := (*[quantChunk * 4]uint64)(pb[base*4 : base*4+quantChunk*4])
			u0 := (*[quantChunk]uint8)(urow0[base : base+quantChunk])
			u1 := (*[quantChunk]uint8)(urow1[base : base+quantChunk])
			var a0, a1, a2, a3, b0, b1, b2, b3 uint64
			for kk := 0; kk < quantChunk; kk += 2 {
				o := kk * 4
				ua := uint64(u0[kk])
				ub := uint64(u1[kk])
				w0 := pa[o]
				a0 += w0 * ua
				b0 += w0 * ub
				w1 := pa[o+1]
				a1 += w1 * ua
				b1 += w1 * ub
				w2 := pa[o+2]
				a2 += w2 * ua
				b2 += w2 * ub
				w3 := pa[o+3]
				a3 += w3 * ua
				b3 += w3 * ub
				ua = uint64(u0[kk+1])
				ub = uint64(u1[kk+1])
				w0 = pa[o+4]
				a0 += w0 * ua
				b0 += w0 * ub
				w1 = pa[o+5]
				a1 += w1 * ua
				b1 += w1 * ub
				w2 = pa[o+6]
				a2 += w2 * ua
				b2 += w2 * ub
				w3 = pa[o+7]
				a3 += w3 * ua
				b3 += w3 * ub
			}
			drainLanes(&s0, a0, a1, a2, a3)
			drainLanes(&s1, b0, b1, b2, b3)
		}
		if base < k {
			var a0, a1, a2, a3, b0, b1, b2, b3 uint64
			for kk := base; kk < k; kk++ {
				o := kk * 4
				ua := uint64(urow0[kk])
				ub := uint64(urow1[kk])
				w0 := pb[o]
				a0 += w0 * ua
				b0 += w0 * ub
				w1 := pb[o+1]
				a1 += w1 * ua
				b1 += w1 * ub
				w2 := pb[o+2]
				a2 += w2 * ua
				b2 += w2 * ub
				w3 := pb[o+3]
				a3 += w3 * ua
				b3 += w3 * ub
			}
			drainLanes(&s0, a0, a1, a2, a3)
			drainLanes(&s1, b0, b1, b2, b3)
		}
		j0 := p * quantPanelOuts
		for t := 0; t < quantPanelOuts && j0+t < n; t++ {
			j := j0 + t
			sw := w.Scales[j]
			cs := 128 * w.colSums[j]
			v0 := sx0 * sw * float32(s0[t]+rc0-cs)
			v1 := sx1 * sw * float32(s1[t]+rc1-cs)
			if bias != nil {
				v0 += bias[j]
				v1 += bias[j]
			}
			crow0[j] = v0
			crow1[j] = v1
		}
	}
}

// quantLinearRowOne is the single-row tail of quantLinearRows.
func quantLinearRowOne(q []uint8, scales []float32, sums []int32, w *QuantMat, bias, c []float32, i int) {
	k, n := w.In, w.Out
	lanes := w.lanes
	corrK := int32(16384 * k)
	urow := q[i*k : i*k+k]
	crow := c[i*n : i*n+n]
	rc := corrK - 128*sums[i]
	sx := scales[i]
	for p := 0; p < w.nPanels; p++ {
		pb := lanes[p*k*4 : (p+1)*k*4]
		var s [quantPanelOuts]int32
		base := 0
		for ; base+quantChunk <= k; base += quantChunk {
			pa := (*[quantChunk * 4]uint64)(pb[base*4 : base*4+quantChunk*4])
			u0 := (*[quantChunk]uint8)(urow[base : base+quantChunk])
			var a0, a1, a2, a3 uint64
			for kk := 0; kk < quantChunk; kk++ {
				o := kk * 4
				ua := uint64(u0[kk])
				a0 += pa[o] * ua
				a1 += pa[o+1] * ua
				a2 += pa[o+2] * ua
				a3 += pa[o+3] * ua
			}
			drainLanes(&s, a0, a1, a2, a3)
		}
		if base < k {
			var a0, a1, a2, a3 uint64
			for kk := base; kk < k; kk++ {
				o := kk * 4
				ua := uint64(urow[kk])
				a0 += pb[o] * ua
				a1 += pb[o+1] * ua
				a2 += pb[o+2] * ua
				a3 += pb[o+3] * ua
			}
			drainLanes(&s, a0, a1, a2, a3)
		}
		j0 := p * quantPanelOuts
		for t := 0; t < quantPanelOuts && j0+t < n; t++ {
			j := j0 + t
			v := sx * w.Scales[j] * float32(s[t]+rc-128*w.colSums[j])
			if bias != nil {
				v += bias[j]
			}
			crow[j] = v
		}
	}
}

// drainLanes unpacks four accumulator words into the panel's twelve
// int32 sums and lets the caller restart the lanes at zero.
func drainLanes(s *[quantPanelOuts]int32, a0, a1, a2, a3 uint64) {
	const mask21 = 1<<21 - 1
	s[0] += int32(a0 & mask21)
	s[1] += int32((a0 >> 21) & mask21)
	s[2] += int32(a0 >> 42)
	s[3] += int32(a1 & mask21)
	s[4] += int32((a1 >> 21) & mask21)
	s[5] += int32(a1 >> 42)
	s[6] += int32(a2 & mask21)
	s[7] += int32((a2 >> 21) & mask21)
	s[8] += int32(a2 >> 42)
	s[9] += int32(a3 & mask21)
	s[10] += int32((a3 >> 21) & mask21)
	s[11] += int32(a3 >> 42)
}

// QuantizeVecInto quantizes one float32 vector to signed int8 with a
// symmetric per-vector scale, returning the scale. This is the memo
// cache's entry payload format (see core's entry codec); the packed
// kernel representation above is unrelated.
func QuantizeVecInto(src []float32, q []int8) float32 {
	if len(q) < len(src) {
		panic("tensor: QuantizeVecInto scratch too small")
	}
	inv, scale := rowQuantScale(src)
	for i, v := range src {
		q[i] = quantByte(v, inv)
	}
	return scale
}

// DequantizeVecInto reconstructs dst[i] = scale·q[i].
func DequantizeVecInto(q []int8, scale float32, dst []float32) {
	if len(dst) < len(q) {
		panic("tensor: DequantizeVecInto dst too small")
	}
	for i, v := range q {
		dst[i] = scale * float32(v)
	}
}

// QuantizeVecBytes is QuantizeVecInto writing the int8 codes into a
// byte slice (two's complement), the representation the memo cache's
// quantized entry payloads and spill records use.
func QuantizeVecBytes(src []float32, dst []byte) float32 {
	if len(dst) < len(src) {
		panic("tensor: QuantizeVecBytes dst too small")
	}
	inv, scale := rowQuantScale(src)
	for i, v := range src {
		dst[i] = byte(quantByte(v, inv))
	}
	return scale
}

// DequantizeVecBytes reconstructs dst[i] = scale·int8(q[i]).
func DequantizeVecBytes(q []byte, scale float32, dst []float32) {
	if len(dst) < len(q) {
		panic("tensor: DequantizeVecBytes dst too small")
	}
	for i, v := range q {
		dst[i] = scale * float32(int8(v))
	}
}
