package tensor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary serialization for tensors: a tiny, versioned, little-endian
// format used to persist trained model parameters (the analogue of the
// artifact's saved_models/ directory).
//
//	magic   uint32 = 0x54475431 ("TGT1")
//	rank    uint32
//	shape   [rank]uint32
//	data    [n]float32

const tensorMagic uint32 = 0x54475431

// WriteTo serializes the tensor to w and returns the number of bytes
// written.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	put32 := func(v uint32) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		k, err := bw.Write(buf[:])
		n += int64(k)
		return err
	}
	if err := put32(tensorMagic); err != nil {
		return n, err
	}
	if err := put32(uint32(len(t.shape))); err != nil {
		return n, err
	}
	for _, d := range t.shape {
		if err := put32(uint32(d)); err != nil {
			return n, err
		}
	}
	buf := make([]byte, 4*len(t.data))
	for i, v := range t.data {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	k, err := bw.Write(buf)
	n += int64(k)
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadFrom deserializes a tensor written by WriteTo, replacing t's shape
// and contents.
func (t *Tensor) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReader(r)
	var n int64
	get32 := func() (uint32, error) {
		var buf [4]byte
		k, err := io.ReadFull(br, buf[:])
		n += int64(k)
		return binary.LittleEndian.Uint32(buf[:]), err
	}
	magic, err := get32()
	if err != nil {
		return n, err
	}
	if magic != tensorMagic {
		return n, fmt.Errorf("tensor: bad magic %#x", magic)
	}
	rank, err := get32()
	if err != nil {
		return n, err
	}
	if rank == 0 || rank > 8 {
		return n, fmt.Errorf("tensor: implausible rank %d", rank)
	}
	shape := make([]int, rank)
	elems := 1
	for i := range shape {
		d, err := get32()
		if err != nil {
			return n, err
		}
		if d > 1<<28 {
			return n, fmt.Errorf("tensor: implausible dimension %d", d)
		}
		shape[i] = int(d)
		elems *= int(d)
		// Bound the product as it grows: a hostile header with several
		// large dimensions must not overflow int (negative make() size
		// panics) or drive a giant allocation.
		if elems > 1<<28 {
			return n, fmt.Errorf("tensor: implausible element count %v", shape[:i+1])
		}
	}
	buf := make([]byte, 4*elems)
	k, err := io.ReadFull(br, buf)
	n += int64(k)
	if err != nil {
		return n, err
	}
	data := make([]float32, elems)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	t.shape = shape
	t.data = data
	return n, nil
}

// SaveFile writes the tensor to path, creating or truncating it.
func (t *Tensor) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a tensor from path.
func LoadFile(path string) (*Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var t Tensor
	if _, err := t.ReadFrom(f); err != nil {
		return nil, fmt.Errorf("tensor: loading %s: %w", path, err)
	}
	return &t, nil
}
