package tensor

// Thresholds collects the trip counts above which the dense kernels fan
// out across the parallel runtime. Below a threshold the kernel runs
// serially on the calling goroutine: for the small batches temporal
// inference produces, fork-join overhead (goroutine wakeup plus the
// chunk-counter contention) costs more than the parallelism recovers.
//
// The defaults were picked by benchmark on the shapes TGAT produces
// (tall-skinny operands, k ≲ 200): see BenchmarkMatMulSerialVsParallel
// and BenchmarkBatchedMatMul. They can be overridden at startup —
// before any concurrent kernel use — for unusual hardware; the kernels
// read them on every call without synchronization.
type Thresholds struct {
	// MatMulRows is the minimum number of output rows for MatMulInto,
	// MatMulT and LinearInto to parallelize the row loop.
	MatMulRows int
	// BatchedMatMulBatches is the minimum batch count for
	// BatchedMatMulInto to parallelize across batches.
	BatchedMatMulBatches int
}

// ParallelThresholds is the process-wide kernel fan-out configuration.
var ParallelThresholds = Thresholds{
	MatMulRows:           64,
	BatchedMatMulBatches: 8,
}
