package tensor

import (
	"fmt"
	"testing"

	"tgopt/internal/parallel"
)

// Matrix-multiplication scaling across the shapes the TGAT layers
// actually produce: tall-skinny projections (many rows, modest inner
// and output dims).
func BenchmarkMatMul(b *testing.B) {
	r := NewRNG(1)
	for _, size := range []struct{ m, k, n int }{
		{64, 96, 64},
		{512, 96, 64},
		{4096, 96, 64},
		{4096, 192, 128},
	} {
		a := Rand(r, size.m, size.k)
		w := Rand(r, size.k, size.n)
		dst := New(size.m, size.n)
		b.Run(fmt.Sprintf("%dx%dx%d", size.m, size.k, size.n), func(b *testing.B) {
			b.SetBytes(int64(4 * (size.m*size.k + size.k*size.n + size.m*size.n)))
			for i := 0; i < b.N; i++ {
				MatMulInto(a, w, dst)
			}
		})
	}
}

func BenchmarkMatMulSerialVsParallel(b *testing.B) {
	r := NewRNG(2)
	a := Rand(r, 2048, 128)
	w := Rand(r, 128, 128)
	dst := New(2048, 128)
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MatMulInto(a, w, dst)
		}
	})
	b.Run("serial", func(b *testing.B) {
		prev := parallel.SetDegree(1)
		defer parallel.SetDegree(prev)
		for i := 0; i < b.N; i++ {
			MatMulInto(a, w, dst)
		}
	})
}

// BenchmarkMatMulKernels compares the dense kernel variants on the
// tall-skinny shape the layer-1 projections produce, plus a mostly-zero
// operand for the sparse kernel's home turf. This is the benchmark the
// kernel doc comments cite for the default choices.
func BenchmarkMatMulKernels(b *testing.B) {
	r := NewRNG(4)
	const m, k, n = 4096, 96, 64
	a := Rand(r, m, k)
	w := Rand(r, k, n)
	dst := New(m, n)
	bytes := int64(4 * (m*k + k*n + m*n))
	b.Run("naive", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			for row := 0; row < m; row++ {
				crow := dst.data[row*n : (row+1)*n]
				clear(crow)
				for kk := 0; kk < k; kk++ {
					av := a.data[row*k+kk]
					for j := 0; j < n; j++ {
						crow[j] += av * w.data[kk*n+j]
					}
				}
			}
		}
	})
	b.Run("blocked", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			MatMulInto(a, w, dst)
		}
	})
	pack := make([]float32, PackedScratchLen(k, n))
	b.Run("packed", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			MatMulPackedInto(a, w, dst, pack)
		}
	})
	b.Run("sparse/dense-input", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			MatMulSparseInto(a, w, dst)
		}
	})
	sp := a.Clone()
	for i := range sp.data {
		if i%8 != 0 {
			sp.data[i] = 0
		}
	}
	b.Run("sparse/87pct-zero", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			MatMulSparseInto(sp, w, dst)
		}
	})
}

func BenchmarkMatMulT(b *testing.B) {
	r := NewRNG(3)
	x := Rand(r, 4096, 96)
	w := Rand(r, 128, 96) // nn.Linear layout
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulT(x, w)
	}
}

func BenchmarkSoftmax(b *testing.B) {
	r := NewRNG(4)
	a := Randn(r, 4096, 20)
	mask := make([]bool, a.Len())
	for i := range mask {
		mask[i] = i%5 != 0
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SoftmaxLastDim(a)
		}
	})
	b.Run("masked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MaskedSoftmaxLastDim(a, mask)
		}
	})
}

func BenchmarkGatherRows(b *testing.B) {
	r := NewRNG(5)
	table := Rand(r, 10000, 64)
	idx := make([]int, 4096)
	for i := range idx {
		idx[i] = r.Intn(10000)
	}
	dst := New(len(idx), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GatherRowsInto(table, idx, dst)
	}
}

func BenchmarkConcatCols(b *testing.B) {
	r := NewRNG(6)
	x := Rand(r, 4096, 32)
	y := Rand(r, 4096, 32)
	z := Rand(r, 4096, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConcatCols(x, y, z)
	}
}

func BenchmarkElementwise(b *testing.B) {
	r := NewRNG(7)
	x := Rand(r, 1<<16)
	y := Rand(r, 1<<16)
	b.Run("Add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			AddInPlace(x, y)
		}
	})
	b.Run("Cos", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Cos(x)
		}
	})
	b.Run("ReLU", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ReLU(x)
		}
	})
}

func BenchmarkRNG(b *testing.B) {
	r := NewRNG(8)
	b.Run("Uint64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.Uint64()
		}
	})
	b.Run("NormFloat64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.NormFloat64()
		}
	})
	b.Run("Pareto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.Pareto(1, 1.2)
		}
	})
}
