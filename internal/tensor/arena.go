package tensor

import "sync"

// Arena is a per-worker scratch allocator for the inference hot path.
// It hands out tensors and typed slices whose backing storage is reused
// across batches: every allocation is satisfied by bumping through a
// list of retained slots, and Reset rewinds the bump pointers without
// freeing anything. After a warmup pass has grown each slot to its
// steady-state capacity, a batch of identical shape performs zero heap
// allocations (see DESIGN.md §9).
//
// Lifecycle: check an arena out (NewArena, or GetArena/PutArena for the
// pooled variant), call Reset at the start of each batch, and treat
// every tensor or slice obtained from it as invalid once Reset or
// PutArena is called. An Arena is NOT safe for concurrent use; each
// goroutine owns its own. It is safe to *read* arena-backed tensors
// from parallel.ForChunked bodies as long as the arena itself is only
// bumped outside the parallel region — the kernels preallocate every
// buffer before fanning out.
//
// All methods are nil-safe: a nil *Arena falls back to ordinary heap
// allocation, so code can thread an optional arena through one code
// path instead of maintaining allocating and non-allocating twins.
type Arena struct {
	tensors []*Tensor // value slots: data owned by the arena
	ti      int
	views   []*Tensor // header-only slots: data owned by the caller
	vi      int
	f32     slabs[float32]
	f64     slabs[float64]
	i32     slabs[int32]
	u64     slabs[uint64]
	bls     slabs[bool]
	i8      slabs[int8]
	byt     slabs[uint8]
}

// slabs reuses typed scratch slices slot-by-slot: the i-th request
// between Resets always lands on the i-th retained buffer, growing it
// once if the requested length ever exceeds its capacity. Because a
// steady-state batch issues the same request sequence every time, every
// slot converges to its high-water capacity and stops allocating.
type slabs[T any] struct {
	bufs [][]T
	i    int
}

func (s *slabs[T]) get(n int) []T {
	if s.i < len(s.bufs) && cap(s.bufs[s.i]) >= n {
		b := s.bufs[s.i][:n]
		s.i++
		return b
	}
	b := make([]T, n, roundCap(n))
	if s.i < len(s.bufs) {
		s.bufs[s.i] = b
	} else {
		s.bufs = append(s.bufs, b)
	}
	s.i++
	return b
}

// roundCap rounds a slot capacity up so that a slot whose request size
// wobbles (e.g. the final short batch of a stream) does not reallocate
// on every size change.
func roundCap(n int) int {
	c := 64
	for c < n {
		c <<= 1
	}
	return c
}

// NewArena creates an empty arena.
func NewArena() *Arena { return &Arena{} }

// Reset rewinds the arena: every previously handed-out tensor and slice
// becomes invalid and its storage is eligible for reuse by subsequent
// allocations. Nothing is freed.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.ti = 0
	a.vi = 0
	a.f32.i = 0
	a.f64.i = 0
	a.i32.i = 0
	a.u64.i = 0
	a.bls.i = 0
	a.i8.i = 0
	a.byt.i = 0
}

// Tensor returns a tensor of the given shape with UNINITIALIZED
// contents (it may hold data from a previous batch). Use TensorZero
// when the kernel accumulates instead of overwriting.
func (a *Arena) Tensor(shape ...int) *Tensor {
	if a == nil {
		return New(shape...)
	}
	n := checkShape(shape)
	var t *Tensor
	if a.ti < len(a.tensors) {
		t = a.tensors[a.ti]
	} else {
		t = &Tensor{}
		a.tensors = append(a.tensors, t)
	}
	a.ti++
	if cap(t.data) < n {
		t.data = make([]float32, n, roundCap(n))
	}
	t.data = t.data[:n]
	t.setShape(shape)
	return t
}

// TensorZero is Tensor with the contents cleared.
func (a *Arena) TensorZero(shape ...int) *Tensor {
	if a == nil {
		return New(shape...)
	}
	t := a.Tensor(shape...)
	clear(t.data)
	return t
}

// Wrap returns a tensor header over caller-owned storage, like
// FromSlice but with the header itself recycled by the arena. The data
// slice is retained, not copied.
func (a *Arena) Wrap(data []float32, shape ...int) *Tensor {
	if a == nil {
		return FromSlice(data, shape...)
	}
	n := checkShape(shape)
	if len(data) != n {
		panic("tensor: Arena.Wrap data length does not match shape")
	}
	var t *Tensor
	if a.vi < len(a.views) {
		t = a.views[a.vi]
	} else {
		t = &Tensor{}
		a.views = append(a.views, t)
	}
	a.vi++
	t.data = data
	t.setShape(shape)
	return t
}

// setShape installs shape into t, reusing t's shape slice when it has
// capacity (the arena steady-state path).
func (t *Tensor) setShape(shape []int) {
	if cap(t.shape) >= len(shape) {
		t.shape = t.shape[:len(shape)]
		copy(t.shape, shape)
	} else {
		t.shape = append(make([]int, 0, 4), shape...)
	}
}

// Float32s returns an uninitialized scratch slice of length n.
func (a *Arena) Float32s(n int) []float32 {
	if a == nil {
		return make([]float32, n)
	}
	return a.f32.get(n)
}

// Float64s returns an uninitialized scratch slice of length n.
func (a *Arena) Float64s(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	return a.f64.get(n)
}

// Int32s returns an uninitialized scratch slice of length n.
func (a *Arena) Int32s(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	return a.i32.get(n)
}

// Uint64s returns an uninitialized scratch slice of length n.
func (a *Arena) Uint64s(n int) []uint64 {
	if a == nil {
		return make([]uint64, n)
	}
	return a.u64.get(n)
}

// Int8s returns an uninitialized scratch slice of length n.
func (a *Arena) Int8s(n int) []int8 {
	if a == nil {
		return make([]int8, n)
	}
	return a.i8.get(n)
}

// Bytes returns an uninitialized scratch slice of length n.
func (a *Arena) Bytes(n int) []uint8 {
	if a == nil {
		return make([]uint8, n)
	}
	return a.byt.get(n)
}

// Bools returns an uninitialized scratch slice of length n.
func (a *Arena) Bools(n int) []bool {
	if a == nil {
		return make([]bool, n)
	}
	return a.bls.get(n)
}

var arenaPool = sync.Pool{New: func() any { return NewArena() }}

// GetArena checks a reset arena out of the process-wide pool. Pair with
// PutArena. Long-lived workers (a serving goroutine, a stream-inference
// worker) should instead hold one arena for their whole lifetime and
// Reset it per batch, so a GC-cleared pool can never force a re-warm in
// the middle of steady-state traffic.
func GetArena() *Arena {
	a := arenaPool.Get().(*Arena)
	a.Reset()
	return a
}

// PutArena returns an arena to the pool. The caller must not use the
// arena — or anything allocated from it — afterwards.
func PutArena(a *Arena) {
	if a != nil {
		arenaPool.Put(a)
	}
}
