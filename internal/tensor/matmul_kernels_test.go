package tensor

import (
	"fmt"
	"testing"

	"tgopt/internal/parallel"
)

// matmulNaive is the reference kernel every optimized variant is
// validated against: the textbook triple loop, no blocking, no
// branches, float32 accumulation in i-k-j order (the same accumulation
// order as the blocked kernels, so dense results must be bitwise
// equal).
func matmulNaive(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			av := a.data[i*k+kk]
			for j := 0; j < n; j++ {
				out.data[i*n+j] += av * b.data[kk*n+j]
			}
		}
	}
	return out
}

// matmulTNaive is the reference for the A·Bᵀ kernels: sequential dot
// products accumulated left to right.
func matmulTNaive(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += a.data[i*k+kk] * b.data[j*k+kk]
			}
			out.data[i*n+j] = s
		}
	}
	return out
}

// kernelShapes covers the shapes the TGAT layers produce plus edge
// cases: row counts around the 4-row blocking (tails of 1..3), column
// counts around the 4-wide panels, and a single-element op.
var kernelShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 5},
	{3, 8, 6},
	{4, 16, 4},
	{5, 3, 9},
	{7, 33, 13},
	{64, 96, 64},
	{130, 96, 33},
	{257, 17, 31},
}

func TestMatMulIntoMatchesNaive(t *testing.T) {
	r := NewRNG(11)
	for _, s := range kernelShapes {
		a := Randn(r, s.m, s.k)
		b := Randn(r, s.k, s.n)
		want := matmulNaive(a, b)
		got := New(s.m, s.n)
		got.Fill(999) // Into must fully overwrite
		MatMulInto(a, b, got)
		// Same accumulation order (i-k-j) → bitwise equality.
		if d := got.MaxAbsDiff(want); d != 0 {
			t.Errorf("MatMulInto %dx%dx%d: max diff %g from naive", s.m, s.k, s.n, d)
		}
	}
}

func TestMatMulPackedMatchesNaive(t *testing.T) {
	r := NewRNG(12)
	for _, s := range kernelShapes {
		a := Randn(r, s.m, s.k)
		b := Randn(r, s.k, s.n)
		want := matmulNaive(a, b)
		got := New(s.m, s.n)
		got.Fill(999)
		pack := make([]float32, PackedScratchLen(s.k, s.n))
		MatMulPackedInto(a, b, got, pack)
		// The packed micro-kernel accumulates per output element in k
		// order, the same order as the naive kernel → bitwise equality.
		if d := got.MaxAbsDiff(want); d != 0 {
			t.Errorf("MatMulPackedInto %dx%dx%d: max diff %g from naive", s.m, s.k, s.n, d)
		}
	}
}

func TestMatMulSparseMatchesNaive(t *testing.T) {
	r := NewRNG(13)
	for _, s := range kernelShapes {
		a := Randn(r, s.m, s.k)
		// Zero out most of A, as masked attention weights are.
		for i := range a.data {
			if i%5 != 0 {
				a.data[i] = 0
			}
		}
		b := Randn(r, s.k, s.n)
		want := matmulNaive(a, b)
		got := New(s.m, s.n)
		got.Fill(999)
		MatMulSparseInto(a, b, got)
		// Skipping the zero terms never changes a finite sum: bitwise.
		if d := got.MaxAbsDiff(want); d != 0 {
			t.Errorf("MatMulSparseInto %dx%dx%d: max diff %g from naive", s.m, s.k, s.n, d)
		}
	}
}

func TestMatMulTIntoMatchesNaive(t *testing.T) {
	r := NewRNG(14)
	for _, s := range kernelShapes {
		a := Randn(r, s.m, s.k)
		b := Randn(r, s.n, s.k) // nn.Linear layout (out, in)
		want := matmulTNaive(a, b)
		got := New(s.m, s.n)
		got.Fill(999)
		MatMulTInto(a, b, got)
		// The 4-unrolled dot32 tail groups additions differently from the
		// sequential reference, so allow float32 rounding slack.
		if d := got.MaxAbsDiff(want); d > 1e-4 {
			t.Errorf("MatMulTInto %dx%dx%d: max diff %g from naive", s.m, s.k, s.n, d)
		}
	}
}

func TestBatchedMatMulVariantsMatchNaive(t *testing.T) {
	r := NewRNG(15)
	const bs, m, k, n = 9, 5, 7, 6
	a := Randn(r, bs, m, k)
	for i := range a.data {
		if i%3 == 0 {
			a.data[i] = 0
		}
	}
	b := Randn(r, bs, k, n)
	want := New(bs, m, n)
	for bi := 0; bi < bs; bi++ {
		av := FromSlice(a.data[bi*m*k:(bi+1)*m*k], m, k)
		bv := FromSlice(b.data[bi*k*n:(bi+1)*k*n], k, n)
		copy(want.data[bi*m*n:(bi+1)*m*n], matmulNaive(av, bv).data)
	}
	dense := New(bs, m, n)
	dense.Fill(999)
	BatchedMatMulInto(a, b, dense)
	if d := dense.MaxAbsDiff(want); d != 0 {
		t.Errorf("BatchedMatMulInto: max diff %g from naive", d)
	}
	sparse := New(bs, m, n)
	sparse.Fill(999)
	BatchedMatMulSparseInto(a, b, sparse)
	if d := sparse.MaxAbsDiff(want); d != 0 {
		t.Errorf("BatchedMatMulSparseInto: max diff %g from naive", d)
	}
	if got := BatchedMatMul(a, b); got.MaxAbsDiff(want) != 0 {
		t.Errorf("BatchedMatMul: max diff %g from naive", got.MaxAbsDiff(want))
	}
}

func TestLinearIntoMatchesLinear(t *testing.T) {
	r := NewRNG(16)
	x := Randn(r, 33, 24)
	w := Randn(r, 17, 24)
	bias := Randn(r, 17)
	want := Linear(x, w, bias)
	got := New(33, 17)
	got.Fill(999)
	LinearInto(x, w, bias, got)
	if d := got.MaxAbsDiff(want); d != 0 {
		t.Errorf("LinearInto: max diff %g from Linear", d)
	}
}

func TestSoftmaxIntoVariants(t *testing.T) {
	r := NewRNG(17)
	a := Randn(r, 13, 9)
	mask := make([]bool, a.Len())
	for i := range mask {
		mask[i] = i%4 != 0
	}
	plain := New(13, 9)
	SoftmaxLastDimInto(a, plain)
	if d := plain.MaxAbsDiff(SoftmaxLastDim(a)); d != 0 {
		t.Errorf("SoftmaxLastDimInto: diff %g", d)
	}
	masked := New(13, 9)
	MaskedSoftmaxLastDimInto(a, mask, masked)
	if d := masked.MaxAbsDiff(MaskedSoftmaxLastDim(a, mask)); d != 0 {
		t.Errorf("MaskedSoftmaxLastDimInto: diff %g", d)
	}
}

func TestConcatColsInto(t *testing.T) {
	r := NewRNG(18)
	x := Randn(r, 7, 3)
	y := Randn(r, 7, 5)
	z := Randn(r, 7, 2)
	want := ConcatCols(x, y, z)
	got := New(7, 10)
	got.Fill(999)
	ConcatColsInto(got, x, y, z)
	if d := got.MaxAbsDiff(want); d != 0 {
		t.Errorf("ConcatColsInto: diff %g", d)
	}
}

func TestMatMulIntoParallelMatchesSerial(t *testing.T) {
	r := NewRNG(19)
	a := Randn(r, 512, 40)
	b := Randn(r, 40, 24)
	par := New(512, 24)
	MatMulInto(a, b, par)
	prev := parallel.SetDegree(1)
	ser := New(512, 24)
	MatMulInto(a, b, ser)
	parallel.SetDegree(prev)
	if d := par.MaxAbsDiff(ser); d != 0 {
		t.Errorf("parallel vs serial MatMulInto: diff %g", d)
	}
}

// The steady-state allocation contract of the hot kernels: writing into
// preallocated destinations never touches the heap.
func TestKernelAllocs(t *testing.T) {
	prev := parallel.SetDegree(1)
	defer parallel.SetDegree(prev)
	r := NewRNG(20)
	a := Randn(r, 128, 96)
	b := Randn(r, 96, 64)
	bt := Randn(r, 64, 96)
	dst := New(128, 64)
	pack := make([]float32, PackedScratchLen(96, 64))
	bias := Randn(r, 64)
	for name, fn := range map[string]func(){
		"MatMulInto":       func() { MatMulInto(a, b, dst) },
		"MatMulPackedInto": func() { MatMulPackedInto(a, b, dst, pack) },
		"MatMulSparseInto": func() { MatMulSparseInto(a, b, dst) },
		"MatMulTInto":      func() { MatMulTInto(a, bt, dst) },
		"LinearInto":       func() { LinearInto(a, bt, bias, dst) },
	} {
		if allocs := testing.AllocsPerRun(10, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

func TestArenaReuseAndReset(t *testing.T) {
	ar := NewArena()
	t1 := ar.Tensor(4, 8)
	d1 := &t1.data[0]
	s1 := ar.Float64s(100)
	ar.Reset()
	t2 := ar.Tensor(4, 8)
	if &t2.data[0] != d1 {
		t.Error("arena did not reuse tensor storage after Reset")
	}
	if t2 != t1 {
		t.Error("arena did not reuse the tensor header after Reset")
	}
	s2 := ar.Float64s(50)
	if &s1[0] != &s2[0] {
		t.Error("arena did not reuse slab storage after Reset")
	}
	// Growing a slot reallocates once, then sticks.
	big := ar.Float64s(1000)
	ar.Reset()
	_ = ar.Float64s(50)
	big2 := ar.Float64s(900)
	if &big[0] != &big2[0] {
		t.Error("arena slot did not retain grown capacity")
	}
}

func TestArenaTensorZeroAndShapes(t *testing.T) {
	ar := NewArena()
	x := ar.Tensor(2, 3)
	x.Fill(7)
	ar.Reset()
	z := ar.TensorZero(3, 2)
	for _, v := range z.Data() {
		if v != 0 {
			t.Fatal("TensorZero returned dirty storage")
		}
	}
	if z.Dim(0) != 3 || z.Dim(1) != 2 {
		t.Fatalf("TensorZero shape %v", z.Shape())
	}
	w := ar.Wrap(make([]float32, 6), 2, 3)
	if w.Dim(0) != 2 || w.Dim(1) != 3 {
		t.Fatalf("Wrap shape %v", w.Shape())
	}
}

func TestNilArenaFallsBackToHeap(t *testing.T) {
	var ar *Arena
	x := ar.Tensor(2, 2)
	y := ar.TensorZero(2, 2)
	if x.Len() != 4 || y.Len() != 4 {
		t.Fatal("nil arena Tensor failed")
	}
	if len(ar.Float64s(3)) != 3 || len(ar.Int32s(3)) != 3 ||
		len(ar.Uint64s(3)) != 3 || len(ar.Bools(3)) != 3 || len(ar.Float32s(3)) != 3 {
		t.Fatal("nil arena slices failed")
	}
	ar.Reset() // must not panic
}

func TestArenaSteadyStateAllocs(t *testing.T) {
	ar := NewArena()
	work := func() {
		ar.Reset()
		q := ar.Tensor(16, 32)
		kv := ar.TensorZero(160, 64)
		_ = ar.Float64s(160)
		_ = ar.Int32s(160)
		_ = ar.Bools(160)
		_ = ar.Uint64s(16)
		_ = ar.Wrap(q.Data(), 32, 16)
		_ = kv
	}
	work() // warm the slots
	if allocs := testing.AllocsPerRun(20, work); allocs != 0 {
		t.Errorf("steady-state arena pass: %v allocs/op, want 0", allocs)
	}
}

// GetArena/PutArena must be race-free under concurrent checkout (the
// -race gate exercises this).
func TestArenaPoolConcurrent(t *testing.T) {
	parallel.For(64, func(i int) {
		ar := GetArena()
		tt := ar.Tensor(8, 8)
		tt.Fill(float32(i))
		for _, v := range tt.Data() {
			if v != float32(i) {
				t.Error("arena storage raced")
			}
		}
		PutArena(ar)
	})
}

func TestPackedScratchLen(t *testing.T) {
	for _, tc := range []struct{ k, n, want int }{
		{3, 1, 12}, {3, 4, 12}, {3, 5, 24}, {96, 64, 96 * 64},
	} {
		if got := PackedScratchLen(tc.k, tc.n); got != tc.want {
			t.Errorf("PackedScratchLen(%d,%d) = %d, want %d", tc.k, tc.n, got, tc.want)
		}
	}
}

func TestMatMulPackedScratchTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for undersized pack scratch")
		}
	}()
	r := NewRNG(21)
	a := Randn(r, 4, 8)
	b := Randn(r, 8, 8)
	MatMulPackedInto(a, b, New(4, 8), make([]float32, 1))
}

func TestParallelThresholdDefaults(t *testing.T) {
	if ParallelThresholds.MatMulRows != 64 || ParallelThresholds.BatchedMatMulBatches != 8 {
		t.Errorf("unexpected defaults %+v", ParallelThresholds)
	}
}

func ExampleMatMulPackedInto() {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	dst := New(2, 2)
	pack := make([]float32, PackedScratchLen(2, 2))
	MatMulPackedInto(a, b, dst, pack)
	fmt.Println(dst)
	// Output: Tensor[2 2][19 22 43 50]
}
