// Package tensor implements the dense float32 tensor substrate that the
// rest of the repository is built on. It stands in for the subset of
// PyTorch that the original TGOpt implementation relies on: contiguous
// row-major tensors, (batched) matrix multiplication, elementwise
// arithmetic with simple broadcasting, activations, masked softmax,
// gathers, concatenation, and reductions.
//
// Tensors are always contiguous and row-major. Shapes are small int
// slices; rank is typically 1–3. Operations allocate their results
// unless they have an explicit *Into variant that writes into a caller
// supplied destination, which the hot inference paths use to avoid
// garbage-collector pressure.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, contiguous, row-major array of float32 values.
type Tensor struct {
	shape []int
	data  []float32
}

// New creates a zero-filled tensor of the given shape. A rank-0 shape is
// rejected; scalars are represented as shape [1].
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is
// retained, not copied; len(data) must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		// Clone shape for the message so the panic path does not leak the
		// parameter (which would force callers' variadic slices onto the heap).
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (%d elements)", len(data), append([]int(nil), shape...), n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Full creates a tensor of the given shape with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones creates a tensor of the given shape filled with 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Scalar creates a shape-[1] tensor holding v.
func Scalar(v float32) *Tensor { return FromSlice([]float32{v}, 1) }

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			// Clone: keeps the shape parameter non-escaping (hot callers pass
			// stack-allocated variadic slices).
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", append([]int(nil), shape...)))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's shape. The returned slice must not be
// mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Data returns the underlying storage. Mutating it mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i, supporting negative indices
// counted from the end (Dim(-1) is the last dimension).
func (t *Tensor) Dim(i int) int {
	if i < 0 {
		i += len(t.shape)
	}
	return t.shape[i]
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Row returns a view of row i of a rank-2 tensor as a slice of length
// Dim(1). The slice aliases the tensor's storage.
func (t *Tensor) Row(i int) []float32 {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on rank-%d tensor", len(t.shape)))
	}
	w := t.shape[1]
	return t.data[i*w : (i+1)*w]
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.data))
	copy(d, t.data)
	return &Tensor{shape: append([]int(nil), t.shape...), data: d}
}

// Reshape returns a view with a new shape sharing the same storage. The
// element count must be unchanged. One dimension may be -1, in which
// case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	n := 1
	for i, d := range shape {
		switch {
		case d == -1:
			if infer >= 0 {
				panic("tensor: Reshape with more than one -1 dimension")
			}
			infer = i
		case d < 0:
			panic(fmt.Sprintf("tensor: Reshape with negative dimension %d", d))
		default:
			n *= d
		}
	}
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		shape[infer] = len(t.data) / n
		n = len(t.data)
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: Reshape %v (%d elements) to %v (%d elements)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: shape, data: t.data}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// CopyFrom copies src's contents into t. Shapes must have equal element
// counts (shape itself is not checked, enabling reshape-free copies).
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(src.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d vs %d", len(src.data), len(t.data)))
	}
	copy(t.data, src.data)
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the maximum absolute elementwise difference between
// t and o, which must have the same element count. It is the metric used
// by the semantics-preservation tests (the paper validates TGOpt against
// the baseline within 1e-5..1e-6).
func (t *Tensor) MaxAbsDiff(o *Tensor) float64 {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff size mismatch %d vs %d", len(t.data), len(o.data)))
	}
	maxd := 0.0
	for i := range t.data {
		d := math.Abs(float64(t.data[i]) - float64(o.data[i]))
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// AllClose reports whether every element of t is within tol of o.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool { return t.MaxAbsDiff(o) <= tol }

// HasNaN reports whether any element is NaN or infinite.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
	}
	return false
}

// String renders a compact, shape-prefixed representation. Large tensors
// are elided.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	limit := len(t.data)
	if limit > 8 {
		limit = 8
	}
	for i := 0; i < limit; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if len(t.data) > limit {
		fmt.Fprintf(&b, " ... (%d total)", len(t.data))
	}
	b.WriteString("]")
	return b.String()
}
