package tensor

import (
	"fmt"
	"math"
)

// ReLU returns max(0, a) elementwise.
func ReLU(a *Tensor) *Tensor {
	out := New(a.shape...)
	for i, v := range a.data {
		if v > 0 {
			out.data[i] = v
		}
	}
	return out
}

// ReLUInPlace clamps every element of a to max(0, v) and returns a.
func ReLUInPlace(a *Tensor) *Tensor {
	for i, v := range a.data {
		if v < 0 {
			a.data[i] = 0
		}
	}
	return a
}

// LeakyReLU returns a where a > 0, otherwise slope*a. TGAT's attention
// uses slope 0.2 (the GAT default) before the softmax.
func LeakyReLU(a *Tensor, slope float32) *Tensor {
	out := New(a.shape...)
	for i, v := range a.data {
		if v > 0 {
			out.data[i] = v
		} else {
			out.data[i] = slope * v
		}
	}
	return out
}

// Sigmoid returns 1/(1+e^-a) elementwise.
func Sigmoid(a *Tensor) *Tensor {
	out := New(a.shape...)
	for i, v := range a.data {
		out.data[i] = sigmoid32(v)
	}
	return out
}

func sigmoid32(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}

// Tanh returns tanh(a) elementwise.
func Tanh(a *Tensor) *Tensor {
	out := New(a.shape...)
	for i, v := range a.data {
		out.data[i] = float32(math.Tanh(float64(v)))
	}
	return out
}

// SoftmaxLastDim computes a numerically stable softmax along the trailing
// dimension, treating the tensor as (rows, w).
func SoftmaxLastDim(a *Tensor) *Tensor {
	out := New(a.shape...)
	SoftmaxLastDimInto(a, out)
	return out
}

// SoftmaxLastDimInto is SoftmaxLastDim writing into dst, which must
// have a's element count. a and dst may alias.
func SoftmaxLastDimInto(a, dst *Tensor) {
	if dst.Len() != a.Len() {
		panic(fmt.Sprintf("tensor: SoftmaxLastDimInto dst has %d elements, want %d", dst.Len(), a.Len()))
	}
	w := a.Dim(-1)
	rows := a.Len() / w
	for i := 0; i < rows; i++ {
		softmaxRow(a.data[i*w:(i+1)*w], dst.data[i*w:(i+1)*w], nil)
	}
}

// MaskedSoftmaxLastDim computes softmax along the trailing dimension
// where mask[i*w+j] == false marks position j of row i as invalid
// (assigned probability 0, as if its logit were -inf). A fully masked row
// yields all zeros rather than NaN; TGAT uses this for padded neighbor
// slots of nodes with no temporal neighbors. mask must have a.Len()
// elements.
func MaskedSoftmaxLastDim(a *Tensor, mask []bool) *Tensor {
	out := New(a.shape...)
	MaskedSoftmaxLastDimInto(a, mask, out)
	return out
}

// MaskedSoftmaxLastDimInto is MaskedSoftmaxLastDim writing into dst,
// which must have a's element count. a and dst may alias.
func MaskedSoftmaxLastDimInto(a *Tensor, mask []bool, dst *Tensor) {
	if len(mask) != a.Len() {
		panic(fmt.Sprintf("tensor: MaskedSoftmaxLastDimInto mask length %d != %d elements", len(mask), a.Len()))
	}
	if dst.Len() != a.Len() {
		panic(fmt.Sprintf("tensor: MaskedSoftmaxLastDimInto dst has %d elements, want %d", dst.Len(), a.Len()))
	}
	w := a.Dim(-1)
	rows := a.Len() / w
	for i := 0; i < rows; i++ {
		softmaxRow(a.data[i*w:(i+1)*w], dst.data[i*w:(i+1)*w], mask[i*w:(i+1)*w])
	}
}

// softmaxRow computes a stable softmax of src into dst, honoring an
// optional validity mask. Invalid entries get probability 0; if every
// entry is invalid, dst stays all zero.
func softmaxRow(src, dst []float32, mask []bool) {
	maxv := float32(math.Inf(-1))
	any := false
	for j, v := range src {
		if mask != nil && !mask[j] {
			continue
		}
		any = true
		if v > maxv {
			maxv = v
		}
	}
	if !any {
		for j := range dst {
			dst[j] = 0
		}
		return
	}
	var sum float64
	for j, v := range src {
		if mask != nil && !mask[j] {
			dst[j] = 0
			continue
		}
		e := math.Exp(float64(v - maxv))
		dst[j] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for j := range dst {
		dst[j] *= inv
	}
}

// LogSigmoid returns log(sigmoid(a)) elementwise, computed stably as
// -softplus(-a). Used by the binary-cross-entropy loss in training.
func LogSigmoid(a *Tensor) *Tensor {
	out := New(a.shape...)
	for i, v := range a.data {
		out.data[i] = float32(-softplus(-float64(v)))
	}
	return out
}

// softplus computes log(1+e^x) without overflow.
func softplus(x float64) float64 {
	if x > 30 {
		return x
	}
	if x < -30 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}
