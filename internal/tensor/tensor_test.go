package tensor

import (
	"math"
	"testing"
	"testing/quick"
	"tgopt/internal/parallel"
)

func TestNewShapeAndZeroFill(t *testing.T) {
	a := New(3, 4)
	if a.Rank() != 2 || a.Dim(0) != 3 || a.Dim(1) != 4 || a.Len() != 12 {
		t.Fatalf("unexpected geometry: rank=%d shape=%v len=%d", a.Rank(), a.Shape(), a.Len())
	}
	for i, v := range a.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewPanicsOnEmptyShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New() with no dims did not panic")
		}
	}()
	New()
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice mismatch did not panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(2, 3, 4)
	a.Set(7.5, 1, 2, 3)
	if got := a.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At(1,2,3) = %v, want 7.5", got)
	}
	// Row-major layout: offset of (1,2,3) = 1*12 + 2*4 + 3 = 23.
	if a.Data()[23] != 7.5 {
		t.Fatalf("row-major offset wrong; data[23]=%v", a.Data()[23])
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	_ = a.At(2, 0)
}

func TestDimNegativeIndex(t *testing.T) {
	a := New(2, 5, 7)
	if a.Dim(-1) != 7 || a.Dim(-2) != 5 || a.Dim(-3) != 2 {
		t.Fatalf("negative Dim lookup broken: %d %d %d", a.Dim(-1), a.Dim(-2), a.Dim(-3))
	}
}

func TestRowAliasesStorage(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	r := a.Row(1)
	r[0] = 99
	if a.At(1, 0) != 99 {
		t.Fatal("Row does not alias storage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Set(42, 0, 0)
	if a.At(0, 0) == 42 {
		t.Fatal("Clone shares storage with original")
	}
	if !a.SameShape(b) {
		t.Fatal("Clone changed shape")
	}
}

func TestReshapeViewSharesStorage(t *testing.T) {
	a := New(2, 6)
	b := a.Reshape(3, 4)
	b.Set(5, 0, 1)
	if a.Data()[1] != 5 {
		t.Fatal("Reshape does not share storage")
	}
	c := a.Reshape(4, -1)
	if c.Dim(1) != 3 {
		t.Fatalf("inferred dim = %d, want 3", c.Dim(1))
	}
}

func TestReshapeBadShapePanics(t *testing.T) {
	a := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("bad Reshape did not panic")
		}
	}()
	a.Reshape(4, 2)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20, 30, 40}, 2, 2)
	if got := Add(a, b).Data(); got[3] != 44 {
		t.Fatalf("Add wrong: %v", got)
	}
	if got := Sub(b, a).Data(); got[0] != 9 {
		t.Fatalf("Sub wrong: %v", got)
	}
	if got := Mul(a, b).Data(); got[2] != 90 {
		t.Fatalf("Mul wrong: %v", got)
	}
	if got := Div(b, a).Data(); got[1] != 10 {
		t.Fatalf("Div wrong: %v", got)
	}
	if got := Scale(a, 2).Data(); got[3] != 8 {
		t.Fatalf("Scale wrong: %v", got)
	}
	AddInPlace(a, b)
	if a.At(0, 0) != 11 {
		t.Fatalf("AddInPlace wrong: %v", a.Data())
	}
}

func TestAXPY(t *testing.T) {
	a := FromSlice([]float32{1, 1}, 2)
	b := FromSlice([]float32{2, 4}, 2)
	AXPY(0.5, b, a)
	if a.Data()[0] != 2 || a.Data()[1] != 3 {
		t.Fatalf("AXPY wrong: %v", a.Data())
	}
}

func TestAddRowBias(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	bias := FromSlice([]float32{10, 20, 30}, 3)
	out := AddRowBias(a, bias)
	want := []float32{11, 22, 33, 14, 25, 36}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("AddRowBias[%d] = %v, want %v", i, v, want[i])
		}
	}
	// Rank-3 broadcast over trailing dim.
	c := New(2, 2, 3)
	outc := AddRowBias(c, bias)
	if outc.At(1, 1, 2) != 30 {
		t.Fatalf("rank-3 AddRowBias wrong: %v", outc.Data())
	}
}

func TestSumMeanReductions(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if Sum(a) != 21 {
		t.Fatalf("Sum = %v", Sum(a))
	}
	if Mean(a) != 3.5 {
		t.Fatalf("Mean = %v", Mean(a))
	}
	sr := SumRows(a)
	if sr.Data()[0] != 5 || sr.Data()[2] != 9 {
		t.Fatalf("SumRows = %v", sr.Data())
	}
	sl := SumLast(a)
	if sl.Data()[0] != 6 || sl.Data()[1] != 15 {
		t.Fatalf("SumLast = %v", sl.Data())
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := NewRNG(1)
	a := Rand(r, 5, 9)
	b := Transpose(Transpose(a))
	if !a.AllClose(b, 0) {
		t.Fatal("transpose twice is not identity")
	}
	at := Transpose(a)
	if at.Dim(0) != 9 || at.Dim(1) != 5 {
		t.Fatalf("transpose shape %v", at.Shape())
	}
	if at.At(3, 2) != a.At(2, 3) {
		t.Fatal("transpose element mismatch")
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	r := NewRNG(2)
	a := Rand(r, 4, 3)
	b := Rand(r, 4, 5)
	c := Rand(r, 4, 2)
	cat := ConcatCols(a, b, c)
	if cat.Dim(0) != 4 || cat.Dim(1) != 10 {
		t.Fatalf("ConcatCols shape %v", cat.Shape())
	}
	parts := SplitCols(cat, 3, 5, 2)
	for i, orig := range []*Tensor{a, b, c} {
		if !parts[i].AllClose(orig, 0) {
			t.Fatalf("SplitCols part %d does not round-trip", i)
		}
	}
}

func TestConcatRows(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 1, 2)
	b := FromSlice([]float32{3, 4, 5, 6}, 2, 2)
	cat := ConcatRows(a, b)
	if cat.Dim(0) != 3 || cat.At(2, 1) != 6 {
		t.Fatalf("ConcatRows wrong: %v %v", cat.Shape(), cat.Data())
	}
}

func TestGatherScatterInverse(t *testing.T) {
	r := NewRNG(3)
	a := Rand(r, 6, 4)
	idx := []int{5, 0, 3, 3}
	g := GatherRows(a, idx)
	if g.Dim(0) != 4 {
		t.Fatalf("gather shape %v", g.Shape())
	}
	for i, ri := range idx {
		for j := 0; j < 4; j++ {
			if g.At(i, j) != a.At(ri, j) {
				t.Fatalf("gather mismatch at (%d,%d)", i, j)
			}
		}
	}
	// ScatterAdd accumulates duplicate rows.
	dst := New(6, 4)
	ScatterAddRows(dst, idx, Ones(4, 4))
	if dst.At(3, 0) != 2 {
		t.Fatalf("ScatterAddRows duplicate accumulation = %v, want 2", dst.At(3, 0))
	}
	if dst.At(1, 0) != 0 {
		t.Fatal("ScatterAddRows touched an unindexed row")
	}
}

func TestMatMulSmallKnown(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("MatMul[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestMatMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul mismatch did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

// naiveMatMul is a deliberately simple reference for property tests.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += a.At(i, kk) * b.At(kk, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func TestMatMulMatchesNaiveProperty(t *testing.T) {
	r := NewRNG(4)
	prop := func(seed uint32) bool {
		rr := NewRNG(uint64(seed))
		m, k, n := 1+rr.Intn(40), 1+rr.Intn(40), 1+rr.Intn(40)
		a := Rand(r, m, k)
		b := Rand(r, k, n)
		return MatMul(a, b).AllClose(naiveMatMul(a, b), 1e-4)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	prevDeg := parallel.SetDegree(4)
	defer parallel.SetDegree(prevDeg)
	r := NewRNG(5)
	a := Rand(r, 200, 64) // above the parallel threshold
	b := Rand(r, 64, 48)
	got := MatMul(a, b)
	want := naiveMatMul(a, b)
	if !got.AllClose(want, 1e-4) {
		t.Fatalf("parallel MatMul diverges from naive: maxdiff=%g", got.MaxAbsDiff(want))
	}
}

func TestMatMulTMatchesTranspose(t *testing.T) {
	r := NewRNG(6)
	a := Rand(r, 17, 23)
	b := Rand(r, 11, 23)
	got := MatMulT(a, b)
	want := MatMul(a, Transpose(b))
	if !got.AllClose(want, 1e-4) {
		t.Fatalf("MatMulT mismatch: %g", got.MaxAbsDiff(want))
	}
}

func TestMatVecMatchesMatMul(t *testing.T) {
	r := NewRNG(7)
	a := Rand(r, 13, 9)
	x := Rand(r, 9)
	got := MatVec(a, x)
	want := MatMul(a, x.Reshape(9, 1))
	for i := 0; i < 13; i++ {
		if math.Abs(float64(got.At(i))-float64(want.At(i, 0))) > 1e-5 {
			t.Fatalf("MatVec[%d] = %v, want %v", i, got.At(i), want.At(i, 0))
		}
	}
}

func TestBatchedMatMulMatchesPerBatch(t *testing.T) {
	r := NewRNG(8)
	bs, m, k, n := 10, 6, 5, 7
	a := Rand(r, bs, m, k)
	b := Rand(r, bs, k, n)
	c := BatchedMatMul(a, b)
	for bi := 0; bi < bs; bi++ {
		av := FromSlice(a.Data()[bi*m*k:(bi+1)*m*k], m, k)
		bv := FromSlice(b.Data()[bi*k*n:(bi+1)*k*n], k, n)
		want := MatMul(av, bv)
		got := FromSlice(c.Data()[bi*m*n:(bi+1)*m*n], m, n)
		if !got.AllClose(want, 1e-4) {
			t.Fatalf("batch %d mismatch: %g", bi, got.MaxAbsDiff(want))
		}
	}
}

func TestLinearMatchesManual(t *testing.T) {
	r := NewRNG(9)
	x := Rand(r, 4, 6)
	w := Rand(r, 3, 6)
	bias := Rand(r, 3)
	got := Linear(x, w, bias)
	want := AddRowBias(MatMul(x, Transpose(w)), bias)
	if !got.AllClose(want, 1e-5) {
		t.Fatalf("Linear mismatch: %g", got.MaxAbsDiff(want))
	}
	nb := Linear(x, w, nil)
	if nb.HasNaN() {
		t.Fatal("nil-bias Linear produced NaN")
	}
}
