package tensor

import (
	"fmt"
	"math"
)

// binaryCheck panics unless a and b have the same element count.
func binaryCheck(op string, a, b *Tensor) {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("tensor: %s size mismatch %v vs %v", op, a.shape, b.shape))
	}
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	binaryCheck("Add", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

// AddInPlace sets a = a + b elementwise and returns a.
func AddInPlace(a, b *Tensor) *Tensor {
	binaryCheck("AddInPlace", a, b)
	for i := range a.data {
		a.data[i] += b.data[i]
	}
	return a
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	binaryCheck("Sub", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	binaryCheck("Mul", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}

// Div returns a / b elementwise.
func Div(a, b *Tensor) *Tensor {
	binaryCheck("Div", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] / b.data[i]
	}
	return out
}

// Scale returns a * s elementwise.
func Scale(a *Tensor, s float32) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * s
	}
	return out
}

// ScaleInPlace multiplies every element of a by s and returns a.
func ScaleInPlace(a *Tensor, s float32) *Tensor {
	for i := range a.data {
		a.data[i] *= s
	}
	return a
}

// AXPY performs a += alpha*b elementwise and returns a.
func AXPY(alpha float32, b, a *Tensor) *Tensor {
	binaryCheck("AXPY", a, b)
	for i := range a.data {
		a.data[i] += alpha * b.data[i]
	}
	return a
}

// AddRowBias adds bias (shape [w]) to every row of a rank-2 or rank-3
// tensor whose trailing dimension is w, returning a new tensor.
func AddRowBias(a, bias *Tensor) *Tensor {
	w := a.Dim(-1)
	if bias.Len() != w {
		panic(fmt.Sprintf("tensor: AddRowBias bias length %d != trailing dim %d", bias.Len(), w))
	}
	out := New(a.shape...)
	for base := 0; base < len(a.data); base += w {
		for j := 0; j < w; j++ {
			out.data[base+j] = a.data[base+j] + bias.data[j]
		}
	}
	return out
}

// AddRowBiasInPlace adds bias to every row of a in place and returns a.
func AddRowBiasInPlace(a, bias *Tensor) *Tensor {
	w := a.Dim(-1)
	if bias.Len() != w {
		panic(fmt.Sprintf("tensor: AddRowBiasInPlace bias length %d != trailing dim %d", bias.Len(), w))
	}
	for base := 0; base < len(a.data); base += w {
		for j := 0; j < w; j++ {
			a.data[base+j] += bias.data[j]
		}
	}
	return a
}

// Sum returns the sum of all elements (accumulated in float64 for
// stability).
func Sum(a *Tensor) float64 {
	s := 0.0
	for _, v := range a.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func Mean(a *Tensor) float64 {
	if len(a.data) == 0 {
		return 0
	}
	return Sum(a) / float64(len(a.data))
}

// SumRows reduces a rank-2 tensor (n, w) along dim 0, returning shape [w].
func SumRows(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: SumRows requires rank 2")
	}
	n, w := a.shape[0], a.shape[1]
	out := New(w)
	for i := 0; i < n; i++ {
		row := a.data[i*w : (i+1)*w]
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}

// SumLast reduces along the trailing dimension: (.., w) -> (..) with the
// result flattened to rank 1 of length Len()/w.
func SumLast(a *Tensor) *Tensor {
	w := a.Dim(-1)
	rows := a.Len() / w
	out := New(rows)
	for i := 0; i < rows; i++ {
		s := float32(0)
		for j := 0; j < w; j++ {
			s += a.data[i*w+j]
		}
		out.data[i] = s
	}
	return out
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Transpose requires rank 2")
	}
	n, w := a.shape[0], a.shape[1]
	out := New(w, n)
	for i := 0; i < n; i++ {
		for j := 0; j < w; j++ {
			out.data[j*n+i] = a.data[i*w+j]
		}
	}
	return out
}

// ConcatCols concatenates rank-2 tensors with equal row counts along the
// column (trailing) dimension.
func ConcatCols(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatCols of nothing")
	}
	n := ts[0].shape[0]
	total := 0
	for _, t := range ts {
		if t.Rank() != 2 {
			panic("tensor: ConcatCols requires rank 2")
		}
		if t.shape[0] != n {
			panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", t.shape[0], n))
		}
		total += t.shape[1]
	}
	out := New(n, total)
	ConcatColsInto(out, ts...)
	return out
}

// ConcatColsInto is ConcatCols writing into dst, which must have shape
// (rows, Σ widths).
func ConcatColsInto(dst *Tensor, ts ...*Tensor) {
	if len(ts) == 0 {
		panic("tensor: ConcatColsInto of nothing")
	}
	n := ts[0].shape[0]
	total := dst.shape[1]
	sum := 0
	for _, t := range ts {
		if t.Rank() != 2 || t.shape[0] != n {
			panic("tensor: ConcatColsInto operand shape mismatch")
		}
		sum += t.shape[1]
	}
	if dst.Rank() != 2 || dst.shape[0] != n || sum != total {
		panic(fmt.Sprintf("tensor: ConcatColsInto dst shape %v, want [%d %d]", dst.shape, n, sum))
	}
	for i := 0; i < n; i++ {
		row := dst.data[i*total : (i+1)*total]
		off := 0
		for _, t := range ts {
			w := t.shape[1]
			copy(row[off:off+w], t.data[i*w:(i+1)*w])
			off += w
		}
	}
}

// ConcatRows concatenates rank-2 tensors with equal column counts along
// the row dimension.
func ConcatRows(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatRows of nothing")
	}
	w := ts[0].shape[1]
	rows := 0
	for _, t := range ts {
		if t.Rank() != 2 {
			panic("tensor: ConcatRows requires rank 2")
		}
		if t.shape[1] != w {
			panic(fmt.Sprintf("tensor: ConcatRows column mismatch %d vs %d", t.shape[1], w))
		}
		rows += t.shape[0]
	}
	out := New(rows, w)
	off := 0
	for _, t := range ts {
		copy(out.data[off:off+len(t.data)], t.data)
		off += len(t.data)
	}
	return out
}

// SplitCols splits a rank-2 tensor into pieces with the given column
// widths, which must sum to Dim(1). Each piece is a fresh tensor.
func SplitCols(a *Tensor, widths ...int) []*Tensor {
	if a.Rank() != 2 {
		panic("tensor: SplitCols requires rank 2")
	}
	n, w := a.shape[0], a.shape[1]
	sum := 0
	for _, wd := range widths {
		sum += wd
	}
	if sum != w {
		panic(fmt.Sprintf("tensor: SplitCols widths %v do not sum to %d", widths, w))
	}
	outs := make([]*Tensor, len(widths))
	off := 0
	for k, wd := range widths {
		out := New(n, wd)
		for i := 0; i < n; i++ {
			copy(out.data[i*wd:(i+1)*wd], a.data[i*w+off:i*w+off+wd])
		}
		outs[k] = out
		off += wd
	}
	return outs
}

// GatherRows selects rows of a rank-2 tensor (n, w) by index, producing
// shape (len(idx), w). Indices out of range panic.
func GatherRows(a *Tensor, idx []int) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: GatherRows requires rank 2")
	}
	w := a.shape[1]
	out := New(len(idx), w)
	GatherRowsInto(a, idx, out)
	return out
}

// GatherRowsInto is GatherRows writing into dst, which must have shape
// (len(idx), w).
func GatherRowsInto(a *Tensor, idx []int, dst *Tensor) {
	w := a.shape[1]
	if dst.shape[0] != len(idx) || dst.shape[1] != w {
		panic(fmt.Sprintf("tensor: GatherRowsInto dst shape %v, want [%d %d]", dst.shape, len(idx), w))
	}
	for i, r := range idx {
		copy(dst.data[i*w:(i+1)*w], a.data[r*w:(r+1)*w])
	}
}

// ScatterAddRows adds each row of src (shape (n, w)) into dst row idx[i].
// Used by autograd to backpropagate through GatherRows.
func ScatterAddRows(dst *Tensor, idx []int, src *Tensor) {
	w := dst.shape[1]
	if src.shape[1] != w || src.shape[0] != len(idx) {
		panic(fmt.Sprintf("tensor: ScatterAddRows src shape %v, want [%d %d]", src.shape, len(idx), w))
	}
	for i, r := range idx {
		d := dst.data[r*w : (r+1)*w]
		s := src.data[i*w : (i+1)*w]
		for j := range d {
			d[j] += s[j]
		}
	}
}

// Map applies f to every element, returning a new tensor.
func Map(a *Tensor, f func(float32) float32) *Tensor {
	out := New(a.shape...)
	for i, v := range a.data {
		out.data[i] = f(v)
	}
	return out
}

// Cos returns cos(a) elementwise.
func Cos(a *Tensor) *Tensor {
	out := New(a.shape...)
	for i, v := range a.data {
		out.data[i] = float32(math.Cos(float64(v)))
	}
	return out
}

// Sin returns sin(a) elementwise.
func Sin(a *Tensor) *Tensor {
	out := New(a.shape...)
	for i, v := range a.data {
		out.data[i] = float32(math.Sin(float64(v)))
	}
	return out
}

// Exp returns e^a elementwise.
func Exp(a *Tensor) *Tensor {
	out := New(a.shape...)
	for i, v := range a.data {
		out.data[i] = float32(math.Exp(float64(v)))
	}
	return out
}

// Log returns ln(a) elementwise.
func Log(a *Tensor) *Tensor {
	out := New(a.shape...)
	for i, v := range a.data {
		out.data[i] = float32(math.Log(float64(v)))
	}
	return out
}

// Dot returns the inner product of two equal-length tensors, accumulated
// in float32 to match the rest of the compute path.
func Dot(a, b *Tensor) float32 {
	binaryCheck("Dot", a, b)
	return dot32(a.data, b.data)
}

func dot32(a, b []float32) float32 {
	var s float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s += a[i]*b[i] + a[i+1]*b[i+1] + a[i+2]*b[i+2] + a[i+3]*b[i+3]
	}
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}
