package tensor

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	if NewRNG(42).Uint64() == c.Uint64() {
		t.Fatal("different seeds produced identical first value (suspicious)")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntnRangeAndPanic(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(3)
	n := 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGParetoTail(t *testing.T) {
	r := NewRNG(4)
	xm, alpha := 1.0, 1.5
	n := 100000
	var below, large int
	for i := 0; i < n; i++ {
		v := r.Pareto(xm, alpha)
		if v < xm {
			below++
		}
		if v > 10 {
			large++
		}
	}
	if below != 0 {
		t.Fatalf("%d Pareto samples below xm", below)
	}
	// P(X > 10) = (xm/10)^alpha ≈ 0.0316 for alpha=1.5.
	frac := float64(large) / float64(n)
	if frac < 0.02 || frac > 0.05 {
		t.Fatalf("Pareto tail fraction = %v, want ≈0.032", frac)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	prop := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw) % 100
		p := NewRNG(uint64(seed)).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestXavierUniformBounds(t *testing.T) {
	r := NewRNG(5)
	w := New(50, 30)
	XavierUniform(r, w)
	a := math.Sqrt(6.0 / (50 + 30))
	var nonzero int
	for _, v := range w.Data() {
		if math.Abs(float64(v)) > a {
			t.Fatalf("Xavier value %v exceeds bound %v", v, a)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < w.Len()/2 {
		t.Fatal("Xavier left most weights zero")
	}
}

func TestRandRandnShapes(t *testing.T) {
	r := NewRNG(6)
	u := Rand(r, 3, 4)
	if u.Len() != 12 {
		t.Fatalf("Rand len %d", u.Len())
	}
	for _, v := range u.Data() {
		if v < 0 || v >= 1 {
			t.Fatalf("Rand value %v out of range", v)
		}
	}
	g := Randn(r, 100, 100)
	if g.HasNaN() {
		t.Fatal("Randn produced NaN")
	}
}

func TestTensorSerializationRoundTrip(t *testing.T) {
	r := NewRNG(7)
	orig := Randn(r, 3, 7, 2)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var back Tensor
	if _, err := back.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !back.SameShape(orig) || !back.AllClose(orig, 0) {
		t.Fatal("serialization round trip mismatch")
	}
}

func TestTensorSerializationRejectsGarbage(t *testing.T) {
	var tt Tensor
	if _, err := tt.ReadFrom(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTensorFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.tensor")
	r := NewRNG(8)
	orig := Randn(r, 16, 16)
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.AllClose(orig, 0) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.tensor")); err == nil {
		t.Fatal("loading missing file did not error")
	}
}
