package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReLUAndLeaky(t *testing.T) {
	a := FromSlice([]float32{-2, -0.5, 0, 1, 3}, 5)
	r := ReLU(a)
	want := []float32{0, 0, 0, 1, 3}
	for i, v := range r.Data() {
		if v != want[i] {
			t.Fatalf("ReLU[%d] = %v, want %v", i, v, want[i])
		}
	}
	l := LeakyReLU(a, 0.2)
	wantL := []float32{-0.4, -0.1, 0, 1, 3}
	for i, v := range l.Data() {
		if math.Abs(float64(v-wantL[i])) > 1e-6 {
			t.Fatalf("LeakyReLU[%d] = %v, want %v", i, v, wantL[i])
		}
	}
}

func TestSigmoidBounds(t *testing.T) {
	a := FromSlice([]float32{-100, -1, 0, 1, 100}, 5)
	s := Sigmoid(a)
	if s.At(2) != 0.5 {
		t.Fatalf("sigmoid(0) = %v", s.At(2))
	}
	for i, v := range s.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("sigmoid[%d] = %v out of [0,1]", i, v)
		}
	}
	if s.At(0) > 1e-6 || s.At(4) < 1-1e-6 {
		t.Fatal("sigmoid saturation wrong")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := NewRNG(10)
	prop := func(seed uint32) bool {
		rr := NewRNG(uint64(seed))
		rows, w := 1+rr.Intn(8), 1+rr.Intn(16)
		a := Randn(r, rows, w)
		s := SoftmaxLastDim(a)
		for i := 0; i < rows; i++ {
			sum := 0.0
			for j := 0; j < w; j++ {
				v := float64(s.At(i, j))
				if v < 0 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStableWithLargeLogits(t *testing.T) {
	a := FromSlice([]float32{1000, 1001, 999}, 1, 3)
	s := SoftmaxLastDim(a)
	if s.HasNaN() {
		t.Fatal("softmax overflowed with large logits")
	}
	if s.At(0, 1) <= s.At(0, 0) || s.At(0, 0) <= s.At(0, 2) {
		t.Fatal("softmax ordering violated")
	}
}

func TestMaskedSoftmaxZeroesInvalid(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 1, 4)
	mask := []bool{true, false, true, false}
	s := MaskedSoftmaxLastDim(a, mask)
	if s.At(0, 1) != 0 || s.At(0, 3) != 0 {
		t.Fatalf("masked entries nonzero: %v", s.Data())
	}
	if math.Abs(float64(s.At(0, 0)+s.At(0, 2))-1) > 1e-5 {
		t.Fatalf("valid entries do not sum to 1: %v", s.Data())
	}
}

func TestMaskedSoftmaxFullyMaskedRowIsZero(t *testing.T) {
	a := FromSlice([]float32{5, 6}, 1, 2)
	s := MaskedSoftmaxLastDim(a, []bool{false, false})
	if s.At(0, 0) != 0 || s.At(0, 1) != 0 {
		t.Fatalf("fully masked row should be zero, got %v", s.Data())
	}
	if s.HasNaN() {
		t.Fatal("fully masked row produced NaN")
	}
}

func TestMaskedSoftmaxMatchesUnmaskedWhenAllValid(t *testing.T) {
	r := NewRNG(11)
	a := Randn(r, 3, 5)
	mask := make([]bool, 15)
	for i := range mask {
		mask[i] = true
	}
	if !MaskedSoftmaxLastDim(a, mask).AllClose(SoftmaxLastDim(a), 1e-7) {
		t.Fatal("all-valid masked softmax differs from plain softmax")
	}
}

func TestLogSigmoidStable(t *testing.T) {
	a := FromSlice([]float32{-80, 0, 80}, 3)
	ls := LogSigmoid(a)
	if ls.HasNaN() {
		t.Fatal("LogSigmoid produced NaN/Inf")
	}
	if math.Abs(float64(ls.At(1))-math.Log(0.5)) > 1e-6 {
		t.Fatalf("LogSigmoid(0) = %v", ls.At(1))
	}
	if ls.At(2) > 0 || ls.At(2) < -1e-6 {
		t.Fatalf("LogSigmoid(80) = %v, want ~0-", ls.At(2))
	}
	if math.Abs(float64(ls.At(0))+80) > 1 {
		t.Fatalf("LogSigmoid(-80) = %v, want ~-80", ls.At(0))
	}
}

func TestCosSinExpLog(t *testing.T) {
	a := FromSlice([]float32{0, float32(math.Pi)}, 2)
	c := Cos(a)
	if math.Abs(float64(c.At(0))-1) > 1e-6 || math.Abs(float64(c.At(1))+1) > 1e-6 {
		t.Fatalf("Cos wrong: %v", c.Data())
	}
	s := Sin(a)
	if math.Abs(float64(s.At(0))) > 1e-6 {
		t.Fatalf("Sin wrong: %v", s.Data())
	}
	e := Exp(FromSlice([]float32{0, 1}, 2))
	if math.Abs(float64(e.At(1))-math.E) > 1e-5 {
		t.Fatalf("Exp wrong: %v", e.Data())
	}
	l := Log(FromSlice([]float32{1, float32(math.E)}, 2))
	if math.Abs(float64(l.At(1))-1) > 1e-5 {
		t.Fatalf("Log wrong: %v", l.Data())
	}
}

func TestTanhRange(t *testing.T) {
	a := FromSlice([]float32{-10, 0, 10}, 3)
	h := Tanh(a)
	if h.At(1) != 0 || h.At(0) >= -0.999 || h.At(2) <= 0.999 {
		t.Fatalf("Tanh wrong: %v", h.Data())
	}
}
