// Streaming fraud screening: score every incoming transaction of a
// payments graph in real time with TGAT temporal embeddings, flagging
// the interactions the model finds least plausible — the
// fraud-detection application domain the paper's introduction motivates.
// The TGOpt engine keeps the per-batch latency low enough for an online
// setting; the example reports both baseline and optimized latency
// percentiles over the same stream.
//
//	go run ./examples/fraudstream
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"tgopt/internal/core"
	"tgopt/internal/dataset"
	"tgopt/internal/graph"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
	"tgopt/internal/trainer"
)

func main() {
	// A payments network: customers (users) pay merchants (items); the
	// same customer hits the same merchants repeatedly, so temporal
	// structure is strong — exactly what TGAT models.
	spec := dataset.Spec{
		Name: "payments", Bipartite: true, Users: 60, Items: 40, Edges: 3000,
		MaxTime: 2e5, Repeat: 0.65, ZipfExponent: 1.1, ParetoAlpha: 1.2, Seed: 77,
	}
	ds, err := dataset.Generate(spec, dataset.Options{FeatureDim: 16})
	if err != nil {
		log.Fatal(err)
	}
	cfg := tgat.Config{Layers: 2, Heads: 2, NodeDim: 16, EdgeDim: 16, TimeDim: 16, NumNeighbors: 5, Seed: 9}
	model, err := tgat.NewModel(cfg, ds.NodeFeat, ds.EdgeFeat)
	if err != nil {
		log.Fatal(err)
	}
	sampler := graph.NewSampler(ds.Graph, cfg.NumNeighbors, graph.MostRecent, 0)

	// Train on the first 70% of history so affinity scores are
	// meaningful.
	fmt.Println("training screening model...")
	if _, err := trainer.Train(model, ds.Graph, sampler, trainer.Config{
		Epochs: 4, BatchSize: 150, LR: 3e-3, TrainFrac: 0.7, Seed: 1,
	}); err != nil {
		log.Fatal(err)
	}

	// Replay the last 30% as the "live" stream and screen each batch.
	edges := ds.Graph.Edges()
	live := edges[int(0.7*float64(len(edges))):]
	screen := func(embed tgat.EmbedFunc) (latencies []time.Duration, flagged []graph.Edge) {
		const batch = 100
		d := cfg.NodeDim
		for start := 0; start < len(live); start += batch {
			end := start + batch
			if end > len(live) {
				end = len(live)
			}
			chunk := live[start:end]
			nb := len(chunk)
			nodes := make([]int32, 2*nb)
			ts := make([]float64, 2*nb)
			for i, e := range chunk {
				nodes[i], nodes[nb+i] = e.Src, e.Dst
				ts[i], ts[nb+i] = e.Time, e.Time
			}
			t0 := time.Now()
			h := embed(nodes, ts)
			hSrc := tensor.FromSlice(h.Data()[:nb*d], nb, d)
			hDst := tensor.FromSlice(h.Data()[nb*d:], nb, d)
			scores := model.Score(hSrc, hDst)
			latencies = append(latencies, time.Since(t0))
			for i := 0; i < nb; i++ {
				if scores.At(i, 0) < -1.0 { // low-affinity: implausible interaction
					flagged = append(flagged, chunk[i])
				}
			}
		}
		return latencies, flagged
	}

	baseLat, baseFlagged := screen(model.BaselineEmbedFunc(sampler))
	engine := core.NewEngine(model, sampler, core.OptAll())
	optLat, optFlagged := screen(engine.EmbedFunc())

	if len(baseFlagged) != len(optFlagged) {
		log.Fatalf("semantics drift: baseline flagged %d, TGOpt flagged %d",
			len(baseFlagged), len(optFlagged))
	}
	fmt.Printf("screened %d live transactions in %d batches; flagged %d as anomalous\n",
		len(live), len(baseLat), len(optFlagged))
	for i, e := range optFlagged {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(optFlagged)-5)
			break
		}
		fmt.Printf("  suspicious: customer %d -> merchant %d at t=%.0f\n", e.Src, e.Dst, e.Time)
	}

	// Explain the first flag: which of the customer's past interactions
	// the model attended to when forming its embedding.
	if len(optFlagged) > 0 {
		e := optFlagged[0]
		_, attrs := model.Explain(sampler, e.Src, e.Time)
		fmt.Printf("attention behind customer %d's embedding at t=%.0f:\n", e.Src, e.Time)
		for i, a := range attrs {
			if i == 3 {
				break
			}
			fmt.Printf("  %.0f%% on merchant %d (interaction at t=%.0f)\n",
				100*a.Weight, a.Neighbor, a.EdgeTime)
		}
	}
	fmt.Printf("batch latency p50/p95:  baseline %v/%v  TGOpt %v/%v\n",
		pct(baseLat, 50), pct(baseLat, 95), pct(optLat, 50), pct(optLat, 95))
}

func pct(ds []time.Duration, p int) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (len(s) - 1) * p / 100
	return s[idx].Round(time.Microsecond)
}
