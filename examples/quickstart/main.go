// Quickstart: build a small dynamic graph by hand, run baseline TGAT
// inference and TGOpt-optimized inference over it, and verify that the
// optimized embeddings are identical while arriving faster.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"tgopt/internal/core"
	"tgopt/internal/dataset"
	"tgopt/internal/graph"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

func main() {
	// A tiny interaction stream: users 1-3 talk to items 4-6 over time.
	// Node ids are 1-based (0 is the padding node).
	edges := []graph.Edge{
		{Src: 1, Dst: 4, Time: 10},
		{Src: 2, Dst: 4, Time: 20},
		{Src: 1, Dst: 5, Time: 30},
		{Src: 3, Dst: 6, Time: 40},
		{Src: 1, Dst: 4, Time: 50},
		{Src: 2, Dst: 5, Time: 60},
		{Src: 3, Dst: 4, Time: 70},
		{Src: 1, Dst: 6, Time: 80},
	}
	g, err := graph.NewGraph(6, edges)
	if err != nil {
		log.Fatal(err)
	}

	// Feature tables: row 0 is the zero padding row. Node features are
	// zero vectors (the paper's convention); edge features are random.
	const d = 16
	r := tensor.NewRNG(42)
	nodeFeat := tensor.New(g.NumNodes()+1, d)
	edgeFeat := tensor.Randn(r, g.NumEdges()+1, d)
	for j := 0; j < d; j++ {
		edgeFeat.Set(0, 0, j)
	}

	cfg := tgat.Config{Layers: 2, Heads: 2, NodeDim: d, EdgeDim: d, TimeDim: d, NumNeighbors: 3, Seed: 1}
	model, err := tgat.NewModel(cfg, nodeFeat, edgeFeat)
	if err != nil {
		log.Fatal(err)
	}
	sampler := graph.NewSampler(g, cfg.NumNeighbors, graph.MostRecent, 0)

	// Ask for the temporal embedding of node 1 at time 90 — "what does
	// user 1 look like after all of this history?"
	nodes := []int32{1, 2, 3}
	ts := []float64{90, 90, 90}

	baseline := model.Embed(sampler, nodes, ts, nil)
	fmt.Println("baseline embedding of node 1:", tensor.FromSlice(baseline.Row(0), 1, d))

	// The TGOpt engine is a drop-in replacement with dedup, memoization
	// and precomputed time encodings.
	engine := core.NewEngine(model, sampler, core.OptAll())
	optimized := engine.Embed(nodes, ts)
	fmt.Printf("max |baseline - tgopt| = %g (paper tolerance 1e-5)\n", baseline.MaxAbsDiff(optimized))

	// On a bigger synthetic workload the speedup becomes visible.
	spec, _ := dataset.SpecByName("jodie-wiki")
	ds, err := dataset.Generate(spec.Scale(0.002), dataset.Options{FeatureDim: d})
	if err != nil {
		log.Fatal(err)
	}
	wmodel, err := tgat.NewModel(cfg, ds.NodeFeat, ds.EdgeFeat)
	if err != nil {
		log.Fatal(err)
	}
	wsampler := graph.NewSampler(ds.Graph, cfg.NumNeighbors, graph.MostRecent, 0)

	start := time.Now()
	tgat.StreamInference(ds.Graph, wmodel, 200, wmodel.BaselineEmbedFunc(wsampler))
	baseTime := time.Since(start)

	wengine := core.NewEngine(wmodel, wsampler, core.OptAll())
	start = time.Now()
	tgat.StreamInference(ds.Graph, wmodel, 200, wengine.EmbedFunc())
	optTime := time.Since(start)

	fmt.Printf("jodie-wiki (scaled): baseline %v, TGOpt %v — %.1fx speedup\n",
		baseTime.Round(time.Millisecond), optTime.Round(time.Millisecond),
		float64(baseTime)/float64(optTime))
}
