// Recommendation serving: a JODIE-style user→item workload (the
// Reddit-posts / LastFM scenario of the paper) where, at query time, a
// user's temporal embedding is matched against every candidate item.
// Candidate item embeddings barely change between queries — exactly the
// redundancy TGOpt's memoization exploits — so repeated queries get
// dramatically cheaper while returning identical rankings.
//
//	go run ./examples/recsys
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"tgopt/internal/core"
	"tgopt/internal/dataset"
	"tgopt/internal/graph"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
)

func main() {
	spec, err := dataset.SpecByName("jodie-reddit")
	if err != nil {
		log.Fatal(err)
	}
	spec = spec.Scale(0.003)
	ds, err := dataset.Generate(spec, dataset.Options{FeatureDim: 16})
	if err != nil {
		log.Fatal(err)
	}
	cfg := tgat.Config{Layers: 2, Heads: 2, NodeDim: 16, EdgeDim: 16, TimeDim: 16, NumNeighbors: 8, Seed: 5}
	model, err := tgat.NewModel(cfg, ds.NodeFeat, ds.EdgeFeat)
	if err != nil {
		log.Fatal(err)
	}
	sampler := graph.NewSampler(ds.Graph, cfg.NumNeighbors, graph.MostRecent, 0)
	engine := core.NewEngine(model, sampler, core.OptAll())

	users := int32(spec.Users)
	items := make([]int32, spec.Items)
	for i := range items {
		items[i] = users + int32(i+1)
	}
	now := ds.Graph.MaxTime() + 1

	// recommend scores every item for one user at one timestamp.
	recommend := func(embed tgat.EmbedFunc, user int32) []int32 {
		nodes := append([]int32{user}, items...)
		ts := make([]float64, len(nodes))
		for i := range ts {
			ts[i] = now
		}
		h := embed(nodes, ts)
		d := cfg.NodeDim
		hUser := tensor.FromSlice(h.Data()[:d], 1, d)
		type scored struct {
			item  int32
			logit float32
		}
		var all []scored
		for i, it := range items {
			hItem := tensor.FromSlice(h.Data()[(i+1)*d:(i+2)*d], 1, d)
			all = append(all, scored{it, model.Score(hUser, hItem).At(0, 0)})
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].logit != all[b].logit {
				return all[a].logit > all[b].logit
			}
			return all[a].item < all[b].item
		})
		top := make([]int32, 3)
		for i := range top {
			top[i] = all[i].item
		}
		return top
	}

	// Serve a burst of queries for different users. After the first
	// query warms the cache, the remaining ones mostly reuse item
	// embeddings.
	queryUsers := []int32{1, 2, 3, 4, 5, 6, 7, 8}

	start := time.Now()
	var baseTop []int32
	for _, u := range queryUsers {
		baseTop = recommend(model.BaselineEmbedFunc(sampler), u)
	}
	baseTime := time.Since(start)

	start = time.Now()
	var optTop []int32
	for _, u := range queryUsers {
		optTop = recommend(engine.EmbedFunc(), u)
	}
	optTime := time.Since(start)

	for i := range baseTop {
		if baseTop[i] != optTop[i] {
			log.Fatalf("rankings diverged: %v vs %v", baseTop, optTop)
		}
	}
	fmt.Printf("served %d recommendation queries over %d candidate items\n",
		len(queryUsers), len(items))
	fmt.Printf("top-3 for user %d: %v (identical under baseline and TGOpt)\n",
		queryUsers[len(queryUsers)-1], optTop)
	fmt.Printf("baseline %v, TGOpt %v — %.1fx speedup from cross-query reuse\n",
		baseTime.Round(time.Millisecond), optTime.Round(time.Millisecond),
		float64(baseTime)/float64(optTime))
}
