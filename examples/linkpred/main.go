// Link prediction end to end: generate a Wikipedia-edit-like dynamic
// graph, train a TGAT model on the chronological prefix, evaluate on the
// suffix, save the checkpoint, and serve predictions with the TGOpt
// engine — the workload TGAT was designed for and the paper's §5.1
// training procedure.
//
//	go run ./examples/linkpred
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"tgopt/internal/core"
	"tgopt/internal/dataset"
	"tgopt/internal/graph"
	"tgopt/internal/tensor"
	"tgopt/internal/tgat"
	"tgopt/internal/trainer"
)

func main() {
	spec, err := dataset.SpecByName("jodie-wiki")
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.Generate(spec.Scale(0.003), dataset.Options{FeatureDim: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d nodes, %d edges\n", ds.Graph.NumNodes(), ds.Graph.NumEdges())

	cfg := tgat.Config{Layers: 1, Heads: 2, NodeDim: 16, EdgeDim: 16, TimeDim: 16, NumNeighbors: 8, Seed: 3}
	model, err := tgat.NewModel(cfg, ds.NodeFeat, ds.EdgeFeat)
	if err != nil {
		log.Fatal(err)
	}
	sampler := graph.NewSampler(ds.Graph, cfg.NumNeighbors, graph.MostRecent, 0)

	res, err := trainer.Train(model, ds.Graph, sampler, trainer.Config{
		Epochs: 8, BatchSize: 100, LR: 3e-3, TrainFrac: 0.75, Seed: 1,
		Logf: func(format string, args ...any) { fmt.Printf("  "+format+"\n", args...) },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validation: AP %.3f, accuracy %.3f (random baseline would be ~0.5)\n",
		res.ValAP, res.ValAcc)

	// Persist and reload, as a deployment would.
	dir, err := os.MkdirTemp("", "tgopt-linkpred")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "wiki.bin")
	if err := model.SaveParams(ckpt); err != nil {
		log.Fatal(err)
	}
	served, err := tgat.NewModel(cfg, ds.NodeFeat, ds.EdgeFeat)
	if err != nil {
		log.Fatal(err)
	}
	if err := served.LoadParams(ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpoint reloaded:", ckpt)

	// Serve with TGOpt: score a handful of candidate links "now".
	engine := core.NewEngine(served, sampler, core.OptAll())
	now := ds.Graph.MaxTime() + 1
	users := []int32{1, 2, 3}
	item := int32(spec.Scale(0.003).Users + 1) // the first (most popular rank) item
	var nodes []int32
	var times []float64
	for _, u := range users {
		nodes = append(nodes, u, item)
		times = append(times, now, now)
	}
	h := engine.Embed(nodes, times)
	d := cfg.NodeDim
	for i, u := range users {
		hu := tensor.FromSlice(h.Data()[2*i*d:(2*i+1)*d], 1, d)
		hv := tensor.FromSlice(h.Data()[(2*i+1)*d:(2*i+2)*d], 1, d)
		score := served.Score(hu, hv).At(0, 0)
		fmt.Printf("P(user %d interacts with item %d next) logit = %+.3f\n", u, item, score)
	}
}
