GO ?= go

.PHONY: build test check race bench microbench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full PR gate: vet + build + tests + race checks on the concurrency-
# sensitive packages (parallel runtime, serving middleware, cache).
check:
	./scripts/check.sh

race:
	$(GO) vet ./... && $(GO) test -race ./internal/parallel/... ./internal/serve/...

# Committed perf artifact: kernel + end-to-end report as BENCH_<n>.json
# at the repo root (see scripts/bench.sh and DESIGN.md §9).
bench:
	./scripts/bench.sh

# In-place Go microbenchmarks (no artifact).
microbench:
	$(GO) test -bench=. -benchmem ./internal/tensor/
