GO ?= go

.PHONY: build test check race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full PR gate: vet + build + tests + race checks on the concurrency-
# sensitive packages (parallel runtime, serving middleware, cache).
check:
	./scripts/check.sh

race:
	$(GO) vet ./... && $(GO) test -race ./internal/parallel/... ./internal/serve/...

bench:
	$(GO) test -bench=. -benchmem .
