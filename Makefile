GO ?= go

.PHONY: build test check race bench bench-serve bench-cache bench-quant bench-deep bench-swap microbench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full PR gate: vet + build + tests + race checks on the concurrency-
# sensitive packages (parallel runtime, serving middleware, cache).
check:
	./scripts/check.sh

race:
	$(GO) vet ./... && $(GO) test -race ./internal/parallel/... ./internal/serve/... ./internal/shard/...

# Committed perf artifact: kernel + end-to-end report as BENCH_<n>.json
# at the repo root (see scripts/bench.sh and DESIGN.md §9).
bench:
	./scripts/bench.sh

# Committed serving-path artifact: closed-loop HTTP load at several
# concurrency levels, cross-request batching off vs on (BENCH_2.json,
# see DESIGN.md §10).
bench-serve:
	$(GO) run ./cmd/tgopt-bench serve -o BENCH_2.json

# Committed cache-policy artifact: memo-cache hit rate vs byte budget
# on a Zipf-skewed trace, FIFO vs TinyLFU admission (BENCH_3.json, see
# DESIGN.md §12).
bench-cache:
	$(GO) run ./cmd/tgopt-bench cachesweep -o BENCH_3.json

# Committed quantized-path artifact: int8 vs float32 kernel MB/s,
# e2e ns/edge and cache hit rate at equal byte budgets, plus the AP
# delta from the accuracy harness (BENCH_4.json, see DESIGN.md §14).
bench-quant:
	./scripts/bench.sh quant

# Committed deep-invalidation artifact: 3-layer serving under live
# ingest, selective transitive invalidation vs the conservative deep
# clear — per-layer hit rates and ns/edge at several ingest rates
# (BENCH_5.json, see DESIGN.md §15).
bench-deep:
	./scripts/bench.sh deep

# Committed hot-swap artifact: online-learning swap under serving
# load — cache re-warm cost and swap pause at several cadences, plus
# bitwise post-swap spot checks (BENCH_6.json, see DESIGN.md §16).
bench-swap:
	./scripts/bench.sh swap

# In-place Go microbenchmarks (no artifact).
microbench:
	$(GO) test -bench=. -benchmem ./internal/tensor/
